// SegmentServer: the transport-independent InterWeave server.
//
// One server manages an arbitrary number of segments (§3.2): it stores the
// master copy of each in wire format (SegmentStore), mediates exclusive
// writer locks, decides per-client whether a cached copy is "recent enough"
// under the client's coherence model, ships type definitions and diffs,
// pushes version notifications to subscribed clients, and periodically
// checkpoints segments to disk as partial protection against failure.
//
// Concurrency model (two-level locking): a read-mostly segment directory
// guarded by a shared_mutex maps names to heap-allocated SegmentEntry
// objects whose addresses never change; all per-segment state — the store,
// the writer lock, and every session's per-segment view of that segment —
// lives under the entry's own mutex. Requests for distinct segments only
// touch the directory lock in shared mode, so the per-connection transport
// threads proceed fully in parallel. Lock ordering: directory → entry →
// session table; see DESIGN.md "Server concurrency model".
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/transport.hpp"
#include "server/replication.hpp"
#include "server/segment_store.hpp"
#include "server/wal.hpp"
#include "wire/coherence.hpp"

namespace iw::server {

class SegmentServer : public ServerCore {
 public:
  struct Options {
    /// Directory for checkpoints; empty disables persistence.
    std::string checkpoint_dir;
    /// Checkpoint a segment every N versions (0 = only on demand).
    uint32_t checkpoint_every = 0;
    /// Writer lease duration: a writer that holds a segment's lock longer
    /// than this without renewing can be reclaimed by a waiting writer (the
    /// late holder's release is then rejected with kLeaseExpired). 0
    /// disables leases — writer locks are held until release/disconnect.
    uint32_t writer_lease_ms = 10'000;
    /// Per-segment write-ahead log (requires checkpoint_dir): every
    /// committed diff is journaled before the commit is acknowledged, so
    /// recovery replays acknowledged versions past the last checkpoint
    /// instead of silently discarding them.
    bool wal_enabled = true;
    /// When the journal reaches the device (see WriteAheadLog::Sync):
    /// kNone / kBatch (group commit) / kCommit (fdatasync per release).
    WriteAheadLog::Sync wal_sync = WriteAheadLog::Sync::kBatch;
    /// Group-commit flush interval for wal_sync == kBatch.
    uint32_t wal_batch_interval_ms = 5;
    /// Seeded crash injection inside WAL appends (crash-harness tests
    /// only); null in production.
    std::shared_ptr<WalCrashSchedule> wal_crash;
    /// How long a waiting writer gives clients holding cached read locks to
    /// ack a kRevokeRead before their cached locks are forcibly dropped
    /// (epoch bump, like a lease reclaim). 0 disables lock caching: every
    /// kReleaseRead drops the lock server-side even when the client asked
    /// to cache it.
    uint32_t revoke_deadline_ms = 2'000;
    /// Cached read grants idle longer than this are swept server-side
    /// without a revoke round trip — a crashed or wedged holder can never
    /// ack one, so the TTL bounds how long it can tax every future writer
    /// with a full revocation deadline. 0 disables the sweep.
    uint32_t cached_grant_ttl_ms = 0;
    /// Streams every journaled record to replica servers and gates commit
    /// acknowledgement on its replication factor (see replication.hpp);
    /// null runs standalone.
    std::shared_ptr<WalReplicator> replicator;
    /// Dials another segment server by address — the server-to-server leg
    /// of self-healing replication. A primary uses it to open the live
    /// link back to a replica that completed a sync (kSyncDone), and a
    /// recruited replica uses it to pull its backfill from the primary
    /// (kRecruit → backfill_segment). Null disables both: syncs are served
    /// but links are never (re-)established from this side.
    std::function<std::shared_ptr<ClientChannel>(const std::string&)>
        peer_dial;
    /// Snapshot bytes per kSyncChunk response when a sync falls back to a
    /// full snapshot; small values force multi-chunk streaming (tests).
    uint32_t sync_chunk_bytes = 1u << 20;
    /// Payload compression (wire/payload.hpp). When on, the server offers
    /// per-connection diff compression in its hello (feature bit 1; only
    /// connections whose client announced the same bit get the section
    /// envelope, so pre-compression peers see the old byte stream) and
    /// journals commit records as compressed envelopes when the sampled
    /// ratio pays. The IW_COMPRESS environment variable overrides this at
    /// construction ("0" disables, anything else enables).
    bool compress_payloads = true;
    /// Incremental checkpoints: after `checkpoint_chain_limit` delta
    /// records have accumulated in a segment's `.iwinc` chain, the next
    /// checkpoint rewrites the full `.iwseg` snapshot and resets the chain
    /// (bounding recovery to one snapshot load plus that many folds). The
    /// first checkpoint of a segment's life is always a full rewrite. 0
    /// disables incremental checkpoints — every checkpoint is a full
    /// rewrite, the pre-chain behavior.
    uint32_t checkpoint_chain_limit = 8;
    /// Store tuning (diff cache, prediction, subblock size).
    SegmentStore::Options store;
  };

  /// Snapshot of the server-wide counters (maintained as relaxed atomics;
  /// the request hot path never takes a stats lock).
  struct Stats {
    uint64_t requests = 0;
    uint64_t updates_sent = 0;
    uint64_t uptodate_responses = 0;
    uint64_t notifications_sent = 0;
    uint64_t checkpoints_written = 0;
    uint64_t lease_expirations = 0;        ///< writer locks reclaimed
    uint64_t stale_releases_rejected = 0;  ///< kLeaseExpired responses
    // Distributed lock caching (reader locks retained client-side).
    uint64_t cached_read_grants = 0;  ///< releases that kept the lock cached
    uint64_t revokes_sent = 0;        ///< kRevokeRead notifications pushed
    uint64_t revokes_acked = 0;       ///< cached locks released by clients
    uint64_t revokes_expired = 0;     ///< cached locks reclaimed on deadline
    // Durability counters (write-ahead log + recovery), summed over every
    // segment's journal.
    uint64_t wal_records_appended = 0;
    uint64_t wal_bytes_appended = 0;
    uint64_t wal_fsyncs = 0;
    uint64_t wal_replayed_records = 0;      ///< records applied by recover()
    uint64_t wal_truncated_bytes = 0;       ///< torn-tail bytes cut at recover
    uint64_t recoveries_completed = 0;      ///< recover() invocations done
    uint64_t checkpoints_quarantined = 0;   ///< corrupt *.iwseg/*.iwinc aside
    uint64_t checkpoints_incremental = 0;   ///< delta records appended
    uint64_t checkpoint_chain_folds = 0;    ///< delta records folded at recover
    // Payload pipeline: what the section envelope and the record envelope
    // saved, measured where the bytes would otherwise have been paid.
    uint64_t updates_compressed = 0;     ///< update diffs sent compressed
    uint64_t update_raw_bytes = 0;       ///< diff bytes before the envelope
    uint64_t update_wire_bytes = 0;      ///< diff section bytes on the wire
    uint64_t commits_compressed = 0;     ///< commit records journaled packed
    uint64_t commit_raw_bytes = 0;       ///< commit payload bytes pre-envelope
    uint64_t commit_stored_bytes = 0;    ///< commit payload bytes journaled
    // Federation (replica role): records streamed in by a primary and
    // placement-epoch enforcement.
    uint64_t repl_records_applied = 0;   ///< kWalAppend records applied
    uint64_t repl_stale_rejected = 0;    ///< records refused by epoch fence
    uint64_t promotions_accepted = 0;    ///< kPromote epochs adopted
    uint64_t expired_grants_swept = 0;   ///< cached grants dropped by TTL
    // Self-healing replication (sync serving + backfill pulls).
    uint64_t sync_requests = 0;          ///< kSyncRequest frames served
    uint64_t sync_tails_served = 0;      ///< syncs answered with a WAL-tail fold
    uint64_t sync_snapshots_served = 0;  ///< syncs answered with a snapshot
    uint64_t backfills_completed = 0;    ///< backfill_segment() installs
    uint64_t recruits_rejected_stale = 0;///< kRecruit refused by epoch fence
  };

  SegmentServer();
  explicit SegmentServer(Options options);
  ~SegmentServer() override;

  // --- ServerCore ---
  void on_connect(SessionId session, Notifier notify) override;
  void on_disconnect(SessionId session) override;
  Frame handle(SessionId session, const Frame& request) override;

  // --- administration ---
  /// Writes every segment to the checkpoint directory (atomic per segment).
  /// Safe to call concurrently with request handling; each segment is
  /// checkpointed under its own lock.
  void checkpoint();
  /// Loads all segments found in the checkpoint directory. Call before
  /// serving; existing in-memory segments with the same name are replaced.
  void recover();

  /// Drops cached read grants older than cached_grant_ttl_ms across every
  /// segment (no revoke round trip — the holder is presumed gone). Returns
  /// the number swept; 0 when the TTL is disabled. Writers also apply the
  /// TTL inline before fanning out revocations, so calling this is only
  /// needed to reclaim grants on otherwise idle segments.
  uint64_t sweep_expired_grants();

  Stats stats() const;
  /// Store-level stats for one segment (throws kNotFound).
  StoreStats segment_stats(const std::string& name) const;
  /// Current version of a segment (throws kNotFound).
  uint32_t segment_version(const std::string& name) const;
  /// Lease-reclaim epoch of a segment: bumped each time an expired writer
  /// lease is reclaimed from a stalled holder (throws kNotFound).
  uint32_t segment_epoch(const std::string& name) const;
  /// Placement epoch of a segment (bumped by kPromote; throws kNotFound).
  uint32_t segment_placement_epoch(const std::string& name) const;
  /// Lineage epoch of a segment: the placement epoch its applied version
  /// history was produced under — adopted at promotion, after a backfill
  /// install, or from a replayed kEpochAdopt record (throws kNotFound). A
  /// rejoining replica whose lineage matches the primary's may take a
  /// WAL-tail fold; a mismatch means its unacked suffix may diverge and it
  /// takes a snapshot instead.
  uint32_t segment_lineage_epoch(const std::string& name) const;

  /// This server's identity in the replication ring; stamped into
  /// kSyncRequest/kSyncDone so the primary can key the replica's link and
  /// dial it back. Safe to call again after a restart on a new address.
  void set_node_identity(std::string id, std::string address);

  /// Pulls `name` from the primary at `primary_address` (the kRecruit /
  /// rejoin path): drives the kSyncRequest chunk loop, installs the
  /// snapshot or applies the WAL-tail fold, adopts the sync's epoch, and
  /// completes the handshake with kSyncDone so the primary flips this
  /// server's link to live kWalAppend tailing. `want_epoch` is the
  /// placement epoch the caller believes (0 = any); the pull aborts with
  /// kStaleEpoch when either side has already seen a newer epoch — repair
  /// racing a newer failover resolves toward the newer lineage. Returns
  /// the segment version after install.
  uint32_t backfill_segment(const std::string& name,
                            const std::string& primary_address,
                            uint32_t want_epoch);

 private:
  /// One session's view of one segment. Guarded by the owning
  /// SegmentEntry's mutex, so bookkeeping for segment A (including
  /// notification fan-out) never blocks a writer on segment B.
  struct SegmentSession {
    uint32_t types_sent = 0;             // prefix of type serials known
    uint64_t modified_since_update = 0;  // for Diff coherence
    bool subscribed = false;
    /// This session released its read lock but kept it cached client-side;
    /// a writer must revoke (and the client ack) before it can proceed.
    bool cached_read = false;
    /// A kRevokeRead has been pushed and not yet acked.
    bool revoke_pending = false;
    /// Session announced lock-caching support in its hello (copied from
    /// `caching_sessions_` at first touch); never granted otherwise.
    bool may_cache = false;
    /// Both sides of this connection negotiated payload compression in the
    /// hello (copied from `compress_sessions_` at first touch): diff
    /// sections to and from this session carry the method-byte envelope.
    bool may_compress = false;
    /// When the current cached grant was issued; the grant-TTL sweep
    /// compares against it.
    std::chrono::steady_clock::time_point grant_time{};
    /// Snapshot cut for an in-progress sync pull by this session
    /// (kSyncRequest in snapshot mode): serialized once at cursor 0 and
    /// sliced per chunk, so every chunk comes from one consistent cut even
    /// while commits keep landing. Cleared when the last chunk is served.
    std::shared_ptr<const std::vector<uint8_t>> sync_snapshot;
    uint32_t sync_version = 0;  ///< version the cached cut covers
    uint32_t sync_epoch = 0;    ///< placement epoch stamped on the cut
    Notifier notify;  // copied from the session record at first touch
  };
  /// One segment plus everything guarded by its lock. Heap-allocated and
  /// never removed from the directory, so raw pointers taken under the
  /// directory lock stay valid without holding it.
  struct SegmentEntry {
    mutable std::mutex mu;
    std::condition_variable writer_cv;  // signalled when `writer` drops to 0
    std::unique_ptr<SegmentStore> store;
    SessionId writer = 0;  // 0 = unlocked
    /// When `writer` != 0 and leases are enabled: the instant after which a
    /// waiting writer may reclaim the lock.
    std::chrono::steady_clock::time_point lease_deadline{};
    /// Sessions whose writer lease was reclaimed while they still believed
    /// they held the lock; their eventual release is rejected with
    /// kLeaseExpired (and the entry dropped) instead of kState.
    std::unordered_set<SessionId> expired_writers;
    /// Bumped on every lease reclaim so sick-writer recoveries are
    /// observable (and, with checkpointed stores, diagnosable after).
    uint32_t epoch = 0;
    /// Bumped once per cached-reader revocation fan-out and echoed back in
    /// kRevokeAck; an ack for an older generation is stale (its revocation
    /// was already retired another way) and must be ignored.
    uint32_t revoke_gen = 0;
    /// Placement epoch this server believes for the segment: stamped into
    /// every replicated record on a primary, enforced against incoming
    /// kWalAppend on a replica, bumped by kPromote. A record carrying an
    /// older epoch comes from a deposed primary and is refused.
    uint32_t repl_epoch = 1;
    /// Placement epoch the segment's applied history was produced under
    /// (see segment_lineage_epoch). Trails repl_epoch on a fenced replica
    /// that has heard of a newer primary but not yet synced from it;
    /// catches up at promotion or backfill install, persisted via
    /// WalRecordType::kEpochAdopt.
    uint32_t lineage_epoch = 1;
    uint32_t versions_since_checkpoint = 0;
    /// Incremental-checkpoint chain state (see checkpoint.hpp). The base is
    /// the version of the last full `.iwseg` this incarnation wrote (0 =
    /// none yet, so the next checkpoint must be a full rewrite — also the
    /// state after recover(), which never resumes an inherited chain).
    uint32_t checkpoint_base_version = 0;
    /// Version covered by base + chain; the next delta record diffs from
    /// here. Meaningful only when checkpoint_base_version != 0.
    uint32_t last_checkpoint_version = 0;
    /// Delta records in the live `.iwinc`; a full rewrite resets it.
    uint32_t checkpoint_chain_len = 0;
    /// Type-table prefix already captured by base + chain.
    uint32_t checkpoint_types_recorded = 0;
    /// Append-only diff journal; null when persistence is disabled. Guarded
    /// by `mu` like the store, so append-before-ack and
    /// truncate-on-checkpoint serialize naturally with commits.
    std::unique_ptr<WriteAheadLog> wal;
    std::unordered_map<SessionId, SegmentSession> sessions;
  };
  struct PendingNotify {
    Notifier notify;
    Frame frame;
  };
  struct AtomicStats {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> updates_sent{0};
    std::atomic<uint64_t> uptodate_responses{0};
    std::atomic<uint64_t> notifications_sent{0};
    std::atomic<uint64_t> checkpoints_written{0};
    std::atomic<uint64_t> lease_expirations{0};
    std::atomic<uint64_t> stale_releases_rejected{0};
    std::atomic<uint64_t> cached_read_grants{0};
    std::atomic<uint64_t> revokes_sent{0};
    std::atomic<uint64_t> revokes_acked{0};
    std::atomic<uint64_t> revokes_expired{0};
    std::atomic<uint64_t> wal_replayed_records{0};
    std::atomic<uint64_t> wal_truncated_bytes{0};
    std::atomic<uint64_t> recoveries_completed{0};
    std::atomic<uint64_t> checkpoints_quarantined{0};
    std::atomic<uint64_t> checkpoints_incremental{0};
    std::atomic<uint64_t> checkpoint_chain_folds{0};
    std::atomic<uint64_t> updates_compressed{0};
    std::atomic<uint64_t> update_raw_bytes{0};
    std::atomic<uint64_t> update_wire_bytes{0};
    std::atomic<uint64_t> commits_compressed{0};
    std::atomic<uint64_t> commit_raw_bytes{0};
    std::atomic<uint64_t> commit_stored_bytes{0};
    std::atomic<uint64_t> repl_records_applied{0};
    std::atomic<uint64_t> repl_stale_rejected{0};
    std::atomic<uint64_t> promotions_accepted{0};
    std::atomic<uint64_t> expired_grants_swept{0};
    std::atomic<uint64_t> sync_requests{0};
    std::atomic<uint64_t> sync_tails_served{0};
    std::atomic<uint64_t> sync_snapshots_served{0};
    std::atomic<uint64_t> backfills_completed{0};
    std::atomic<uint64_t> recruits_rejected_stale{0};
  };

  Frame dispatch(SessionId session, const Frame& request,
                 std::vector<PendingNotify>* notifies);
  /// Directory lookup (shared lock); inserts under the exclusive lock when
  /// `create`. Returns nullptr when absent and !create.
  SegmentEntry* find_segment(const std::string& name, bool create);
  /// Like find_segment(name, false) but throws kNotFound when absent.
  SegmentEntry& segment(const std::string& name);
  const SegmentEntry& segment(const std::string& name) const;
  /// This session's state for `entry`'s segment, created on first touch
  /// (validating the session against the connection table). Caller holds
  /// entry.mu.
  SegmentSession& seg_session(SegmentEntry& entry, SessionId id);
  /// Appends status/type-table/diff to `payload` for a client at
  /// `client_version` under `policy`; returns true when an update was sent.
  /// Caller holds entry.mu.
  bool append_update(SegmentEntry& entry, SegmentSession& ss,
                     uint32_t client_version, CoherencePolicy policy,
                     Buffer& payload);
  bool is_stale(SegmentEntry& entry, const SegmentSession& ss,
                uint32_t client_version, CoherencePolicy policy) const;
  /// Blocks until `session` owns the entry's writer lock, reclaiming an
  /// expired lease from a stalled holder if one stands in the way. Caller
  /// holds `el` (the entry's lock).
  void acquire_writer_locked(SegmentEntry& entry, const std::string& name,
                             SessionId session,
                             std::unique_lock<std::mutex>& el);
  /// Pushes kRevokeRead to every session caching a read lock on `entry`
  /// (other than the acquiring writer) and waits until all of them ack or
  /// the revocation deadline passes; unacked holders are then forcibly
  /// dropped with an epoch bump. Fires the notifiers with `el` released —
  /// in-process transports run the client's revoke handler synchronously.
  /// Caller holds `el`; it is held again on return.
  void revoke_cached_readers_locked(SegmentEntry& entry,
                                    const std::string& name,
                                    SessionId session,
                                    std::unique_lock<std::mutex>& el);
  /// Checkpoints one segment: a delta record onto its `.iwinc` chain when
  /// a base exists and the chain is under the limit, a full `.iwseg`
  /// rewrite otherwise. Either way the journal is truncated after the
  /// checkpoint lands durably. Caller holds entry.mu.
  void checkpoint_segment_locked(SegmentEntry& entry);
  /// The full-rewrite half: durable snapshot, chain file removed, chain
  /// state reset. Caller holds entry.mu.
  void checkpoint_full_locked(SegmentEntry& entry);
  /// Applies one record streamed by a primary (kWalAppend) to the store
  /// and journals it — the replica half of journal-before-ack. Idempotent:
  /// a commit at or below the store version (a re-sent batch after a link
  /// reconnect) is skipped. `body` is the on-wire (possibly compressed)
  /// payload and is journaled verbatim with `compressed` on the tag, so
  /// the primary's encoding is inherited; `raw` is the decoded payload the
  /// record is applied from. Caller holds entry.mu and has already passed
  /// the epoch fence.
  void apply_replicated_locked(SegmentEntry& entry, const std::string& name,
                               WalRecordType type,
                               std::span<const uint8_t> body, bool compressed,
                               std::span<const uint8_t> raw);

  // --- self-healing replication plumbing ---
  /// Serves one kSyncRequest: registers the requester's link paused (first
  /// chunk only), picks WAL-tail fold vs snapshot via the version/lineage
  /// handshake, and emits one kSyncChunk payload. Caller holds nothing.
  Frame serve_sync_request(SessionId session, BufReader& in);
  /// Adopts `epoch` as both the replication fence and the lineage of the
  /// applied history, journaling a kEpochAdopt record (local-only) so the
  /// lineage survives restart. Caller holds entry.mu.
  void adopt_epoch_locked(SegmentEntry& entry, uint32_t epoch);
  /// Makes a freshly installed/folded backfill durable: full checkpoint,
  /// journal truncated to it (discarding any divergent unacked suffix from
  /// a deposed incarnation), lineage re-journaled. Caller holds entry.mu.
  void seal_backfill_locked(SegmentEntry& entry, uint32_t epoch);
  /// Re-appends the lineage marker to the journal (no-op at lineage 1 or
  /// without a journal) — called after every journal truncation/reopen so
  /// the lineage survives checkpoint retirement. Caller holds entry.mu.
  void journal_lineage_locked(SegmentEntry& entry);

  // --- durability plumbing ---
  /// True when commits are journaled (checkpoint_dir set + wal_enabled).
  bool wal_on() const noexcept;
  WriteAheadLog::Options wal_options();
  std::string wal_file_path(const std::string& name) const;
  std::string chain_file_path(const std::string& name) const;
  /// Folds a segment's `.iwinc` chain onto its freshly loaded snapshot
  /// during recover(): applies every valid delta record whose base matches
  /// the snapshot, removes a stale chain (base mismatch on the first
  /// record — the residue of a crash between a full rewrite and the old
  /// chain's unlink), and quarantines the tail past a mid-chain violation.
  void fold_checkpoint_chain(const std::string& name,
                             std::unique_ptr<SegmentStore>& store);
  /// Opens a brand-new journal for `entry` (discarding any stale log file
  /// left by an earlier incarnation) and records the segment's birth.
  void open_fresh_wal(SegmentEntry& entry, const std::string& name);
  /// Applies replayed journal records to `store` in order, stopping at the
  /// first record that cannot be applied. Returns the end offset of the
  /// last applied record (so the reopened log is truncated to exactly the
  /// applied prefix) and counts applied records into the stats. When
  /// `lineage_epoch` is non-null it receives the newest kEpochAdopt value
  /// in the applied prefix (untouched when the journal has none).
  uint64_t replay_wal_records(const std::string& name,
                              std::unique_ptr<SegmentStore>& store,
                              const WriteAheadLog::Replay& replay,
                              uint32_t* lineage_epoch = nullptr);

  Options options_;
  /// Aggregated append/fsync counters shared by every segment's journal.
  WalCounters wal_counters_;

  /// Level 1: the segment directory. Read-mostly — shared for lookup,
  /// exclusive only to insert a new segment.
  mutable std::shared_mutex dir_mu_;
  std::unordered_map<std::string, std::unique_ptr<SegmentEntry>> segments_;

  /// Connection table (session → notifier). Leaf lock: never held while
  /// acquiring the directory or an entry lock.
  mutable std::shared_mutex sessions_mu_;
  std::unordered_map<SessionId, Notifier> sessions_;
  /// Sessions whose kHello announced client-side lock caching (feature
  /// bit 0). Guarded by sessions_mu_ like the connection table.
  std::unordered_set<SessionId> caching_sessions_;
  /// Sessions whose kHello announced payload compression (feature bit 1)
  /// while the server has it enabled too — only these ever see the diff
  /// section envelope. Guarded by sessions_mu_.
  std::unordered_set<SessionId> compress_sessions_;

  /// Ring identity (set_node_identity); leaf lock like the session table.
  mutable std::mutex node_mu_;
  std::string node_id_;
  std::string node_address_;

  AtomicStats stats_;
};

}  // namespace iw::server
