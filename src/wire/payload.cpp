#include "wire/payload.hpp"

#include <cstring>

#include "util/crc32c.hpp"
#include "util/endian.hpp"
#include "util/error.hpp"

namespace iw {

namespace {

// --- LZ codec internals -----------------------------------------------------

constexpr size_t kMinMatch = 4;
constexpr int kHashBits = 13;
constexpr size_t kMaxOffset = 0xFFFF;

inline uint32_t load_raw32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// Fibonacci-hash the 4-byte sequence at a position into the match table.
inline uint32_t sequence_slot(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Appends a 255-run length extension (the amount beyond the token nibble).
void emit_length(Buffer& out, size_t len) {
  while (len >= 255) {
    out.append_u8(255);
    len -= 255;
  }
  out.append_u8(static_cast<uint8_t>(len));
}

[[noreturn]] void corrupt(const char* what) {
  throw Error(ErrorCode::kCorruptPayload, what);
}

}  // namespace

bool lz_compress(std::span<const uint8_t> raw, Buffer& out) {
  const size_t n = raw.size();
  if (n < kMinCompressInput || n > kMaxFramedBody) return false;
  const uint8_t* src = raw.data();
  const size_t start = out.size();

  // Positions are stored +1 so a zero entry means "empty".
  std::vector<uint32_t> table(size_t{1} << kHashBits, 0);

  size_t ip = 0, anchor = 0;
  while (ip + kMinMatch <= n) {
    const uint32_t seq = load_raw32(src + ip);
    const uint32_t slot = sequence_slot(seq);
    const size_t cand = table[slot];
    table[slot] = static_cast<uint32_t>(ip + 1);
    if (cand != 0) {
      const size_t cpos = cand - 1;
      if (ip - cpos <= kMaxOffset && load_raw32(src + cpos) == seq) {
        size_t len = kMinMatch;
        while (ip + len < n && src[cpos + len] == src[ip + len]) ++len;

        const size_t lit = ip - anchor;
        const size_t lit_nib = lit < 15 ? lit : 15;
        const size_t match_nib = (len - kMinMatch) < 15 ? len - kMinMatch : 15;
        out.append_u8(static_cast<uint8_t>((lit_nib << 4) | match_nib));
        if (lit >= 15) emit_length(out, lit - 15);
        out.append(src + anchor, lit);
        out.append_u16(static_cast<uint16_t>(ip - cpos));
        if (len - kMinMatch >= 15) emit_length(out, len - kMinMatch - 15);

        ip += len;
        anchor = ip;
        // Already bigger than the input: incompressible, stop wasting work.
        if (out.size() - start >= n) {
          out.truncate(start);
          return false;
        }
        continue;
      }
    }
    ++ip;
  }

  // Final literals-only sequence (no offset follows; the decoder knows by
  // reaching the end of input).
  const size_t lit = n - anchor;
  const size_t lit_nib = lit < 15 ? lit : 15;
  out.append_u8(static_cast<uint8_t>(lit_nib << 4));
  if (lit >= 15) emit_length(out, lit - 15);
  out.append(src + anchor, lit);

  if (out.size() - start >= n) {
    out.truncate(start);
    return false;
  }
  return true;
}

void lz_decompress(std::span<const uint8_t> comp, uint8_t* dst,
                   size_t raw_len) {
  const uint8_t* in = comp.data();
  const uint8_t* const in_end = in + comp.size();
  size_t written = 0;

  // Reads a 255-run length extension when the token nibble saturated.
  auto read_length = [&](size_t base) -> size_t {
    size_t len = base;
    if (base == 15) {
      uint8_t b;
      do {
        if (in == in_end) corrupt("truncated length extension");
        b = *in++;
        len += b;
      } while (b == 255);
    }
    return len;
  };

  if (comp.empty() && raw_len != 0) corrupt("empty compressed stream");
  while (in != in_end) {
    const uint8_t token = *in++;
    const size_t lit = read_length(token >> 4);
    if (lit > static_cast<size_t>(in_end - in)) {
      corrupt("literal run past end of input");
    }
    if (lit > raw_len - written) corrupt("literal run past end of output");
    std::memcpy(dst + written, in, lit);
    in += lit;
    written += lit;

    if (in == in_end) break;  // final literals-only sequence

    if (in_end - in < 2) corrupt("truncated match offset");
    const size_t offset = (size_t{in[0]} << 8) | in[1];
    in += 2;
    if (offset == 0 || offset > written) corrupt("match offset out of range");
    const size_t match = kMinMatch + read_length(token & 0xF);
    if (match > raw_len - written) corrupt("match run past end of output");
    // Byte-wise: matches may overlap their own output (RLE-style).
    const uint8_t* from = dst + written - offset;
    for (size_t i = 0; i < match; ++i) dst[written + i] = from[i];
    written += match;
  }
  if (written != raw_len) corrupt("decompressed size mismatch");
}

std::vector<uint8_t> lz_decompress(std::span<const uint8_t> comp,
                                   size_t raw_len) {
  if (raw_len > kMaxFramedBody) corrupt("raw length implausible");
  std::vector<uint8_t> out(raw_len);
  lz_decompress(comp, out.data(), raw_len);
  return out;
}

// --- Record payload envelope ------------------------------------------------

bool compress_record_payload(std::span<const uint8_t> head,
                             std::span<const uint8_t> body, Buffer& out) {
  const size_t raw_len = head.size() + body.size();
  out.clear();
  if (raw_len < kMinCompressInput || raw_len > kMaxFramedBody) return false;
  out.append_u32(static_cast<uint32_t>(raw_len));
  bool ok;
  if (head.empty()) {
    ok = lz_compress(body, out);
  } else if (body.empty()) {
    ok = lz_compress(head, out);
  } else {
    std::vector<uint8_t> joined;
    joined.reserve(raw_len);
    joined.insert(joined.end(), head.begin(), head.end());
    joined.insert(joined.end(), body.begin(), body.end());
    ok = lz_compress(joined, out);
  }
  // The 4-byte raw_len prefix counts against the savings.
  if (!ok || out.size() >= raw_len) {
    out.clear();
    return false;
  }
  return true;
}

std::vector<uint8_t> decompress_record_payload(
    std::span<const uint8_t> payload) {
  if (payload.size() < 4) corrupt("compressed record too short");
  const uint32_t raw_len = load_be32(payload.data());
  if (raw_len > kMaxFramedBody) corrupt("compressed record raw length");
  return lz_decompress(payload.subspan(4), raw_len);
}

// --- Wire diff-section envelope ---------------------------------------------

bool compress_section_in_place(Buffer& buf, size_t method_offset) {
  check_internal(method_offset < buf.size(), "method offset past end");
  const size_t raw_len = buf.size() - method_offset - 1;
  if (raw_len < kMinCompressInput) return false;
  // Compress into a scratch buffer first: appending to `buf` while reading
  // from it could reallocate the storage out from under the source span.
  static thread_local Buffer scratch;
  scratch.clear();
  if (!lz_compress({buf.data() + method_offset + 1, raw_len}, scratch)) {
    return false;
  }
  // The envelope adds 8 bytes of lengths; require a real saving.
  if (scratch.size() + 8 >= raw_len) return false;
  buf.truncate(method_offset);
  buf.append_u8(payload_method::kLz);
  buf.append_u32(static_cast<uint32_t>(scratch.size()));
  buf.append_u32(static_cast<uint32_t>(raw_len));
  buf.append(scratch.span());
  return true;
}

bool read_compressed_section(BufReader& in, std::vector<uint8_t>& scratch) {
  const uint8_t method = in.read_u8();
  if (method == payload_method::kRaw) return false;
  if (method != payload_method::kLz) corrupt("unknown payload method");
  const uint32_t comp_len = in.read_u32();
  const uint32_t raw_len = in.read_u32();
  if (raw_len > kMaxFramedBody) corrupt("section raw length implausible");
  if (comp_len > in.remaining()) corrupt("section truncated");
  auto comp = in.read_bytes(comp_len);
  scratch.resize(raw_len);
  lz_decompress(comp, scratch.data(), raw_len);
  return true;
}

// --- CRC32C record framing --------------------------------------------------

void build_record_prefix(uint8_t tag, std::span<const uint8_t> head,
                         std::span<const uint8_t> body,
                         uint8_t prefix[kFramedPrefixBytes]) {
  const size_t body_len = 1 + head.size() + body.size();
  check_internal(body_len <= kMaxFramedBody, "framed record too large");
  uint32_t crc = crc32c(&tag, 1);
  crc = crc32c_extend(crc, head);
  crc = crc32c_extend(crc, body);
  store_be32(prefix, static_cast<uint32_t>(body_len));
  store_be32(prefix + 4, crc);
  prefix[kFramedHeaderBytes] = tag;
}

void append_framed_record(Buffer& out, uint8_t tag,
                          std::span<const uint8_t> head,
                          std::span<const uint8_t> body) {
  uint8_t prefix[kFramedPrefixBytes];
  build_record_prefix(tag, head, body, prefix);
  out.append(prefix, sizeof prefix);
  out.append(head);
  out.append(body);
}

RecordScanner::Status RecordScanner::next(ScannedRecord* rec) {
  if (pos_ == data_.size()) return Status::kEnd;
  if (data_.size() - pos_ < kFramedHeaderBytes) return Status::kTorn;
  const uint8_t* p = data_.data() + pos_;
  const uint32_t body_len = load_be32(p);
  const uint32_t crc = load_be32(p + 4);
  if (body_len == 0 || body_len > kMaxFramedBody) return Status::kTorn;
  if (data_.size() - pos_ - kFramedHeaderBytes < body_len) return Status::kTorn;
  const uint8_t* body = p + kFramedHeaderBytes;
  if (crc32c(body, body_len) != crc) return Status::kTorn;
  rec->tag = body[0];
  rec->payload = {body + 1, body_len - 1};
  pos_ += kFramedHeaderBytes + body_len;
  rec->end_offset = base_ + pos_;
  return Status::kRecord;
}

}  // namespace iw
