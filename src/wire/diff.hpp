// Machine-independent segment diffs — the paper's central wire artifact.
//
// A segment diff describes how a segment changed between two versions as a
// sequence of block entries. Each entry is either a freed block, a newly
// created block (carrying its type serial and optional symbolic name,
// followed by its full contents as one run), or a modified block carrying
// run-length-encoded changes. Runs address *primitive data units*, never
// bytes, so a diff collected on one architecture applies on any other.
//
// Entry layout (all integers big-endian):
//   u32 serial
//   u8  flags (kNew | kFree | kWhole)
//   [kNew]  u32 type_serial, lp name
//   [!kFree] u32 diff_bytes            -- paper's "block diff length"
//            runs, diff_bytes long:
//              u32 start_unit, u32 unit_count, unit data (wire format)
//
// DiffWriter streams entries into a Buffer (patching lengths); DiffReader
// re-walks them. Translation of unit data is done by the caller via
// encode_units/decode_units so the same format serves client and server.
#pragma once

#include <optional>
#include <string>

#include "util/buffer.hpp"

namespace iw {

namespace diff_flags {
inline constexpr uint8_t kNew = 1;    ///< block created in this diff
inline constexpr uint8_t kFree = 2;   ///< block deleted in this diff
inline constexpr uint8_t kWhole = 4;  ///< runs cover the entire block
}  // namespace diff_flags

/// Streaming writer for one segment diff.
class DiffWriter {
 public:
  /// Writes the diff header. The diff describes (from_version, to_version].
  DiffWriter(Buffer& out, uint32_t from_version, uint32_t to_version);

  /// Appends a freed-block entry.
  void add_free(uint32_t serial);

  /// Opens a block entry; runs follow until end_block().
  void begin_block(uint32_t serial, uint8_t flags, uint32_t type_serial = 0,
                   std::string_view name = {});

  /// Opens one run; the caller must then append exactly the wire encoding of
  /// `unit_count` units (via encode_units) to buffer().
  void begin_run(uint32_t start_unit, uint32_t unit_count);

  /// Buffer run data is appended to.
  Buffer& buffer() noexcept { return out_; }

  /// Closes the current block entry, patching its diff_bytes.
  void end_block();

  /// Closes the diff, patching the entry count. Returns total encoded bytes
  /// of the diff (for bandwidth accounting).
  uint64_t finish();

 private:
  Buffer& out_;
  size_t start_offset_;
  size_t count_offset_;
  size_t block_len_offset_ = 0;
  size_t block_data_start_ = 0;
  uint32_t entries_ = 0;
  bool in_block_ = false;
  bool finished_ = false;
};

/// One parsed diff entry header. For data-carrying entries, `runs` is
/// positioned at the first run and spans exactly the entry's run section.
struct DiffEntry {
  uint32_t serial = 0;
  uint8_t flags = 0;
  uint32_t type_serial = 0;  ///< valid when kNew
  std::string name;          ///< valid when kNew
  BufReader runs{nullptr, 0};
};

/// One run header inside an entry's run section.
struct DiffRun {
  uint32_t start_unit;
  uint32_t unit_count;
};

/// Sequential reader over a segment diff.
class DiffReader {
 public:
  explicit DiffReader(BufReader& in);

  uint32_t from_version() const noexcept { return from_version_; }
  uint32_t to_version() const noexcept { return to_version_; }
  uint32_t entry_count() const noexcept { return entry_count_; }

  /// Reads the next entry; returns false when the diff is exhausted.
  bool next(DiffEntry* entry);

  /// Reads one run header from an entry's run section.
  static DiffRun read_run(BufReader& runs);

 private:
  BufReader& in_;
  uint32_t from_version_;
  uint32_t to_version_;
  uint32_t entry_count_;
  uint32_t consumed_ = 0;
};

}  // namespace iw
