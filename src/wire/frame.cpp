#include "wire/frame.hpp"

namespace iw {

void encode_frame(const Frame& frame, Buffer& out) {
  out.append_u8(static_cast<uint8_t>(frame.type));
  out.append_u32(frame.request_id);
  out.append_u32(static_cast<uint32_t>(frame.payload.size()));
  out.append(frame.payload.data(), frame.payload.size());
}

void encode_frame_header(MsgType type, uint32_t request_id,
                         size_t payload_size, uint8_t out[kFrameHeaderSize]) {
  if (payload_size > kMaxFramePayload) {
    throw Error(ErrorCode::kProtocol, "frame payload too large");
  }
  out[0] = static_cast<uint8_t>(type);
  store_be32(out + 1, request_id);
  store_be32(out + 5, static_cast<uint32_t>(payload_size));
}

FrameHeader decode_frame_header(const uint8_t* header_bytes) {
  FrameHeader h;
  h.type = static_cast<MsgType>(header_bytes[0]);
  h.request_id = load_be32(header_bytes + 1);
  h.payload_size = load_be32(header_bytes + 5);
  if (h.payload_size > kMaxFramePayload) {
    throw Error(ErrorCode::kProtocol, "frame payload too large");
  }
  return h;
}

}  // namespace iw
