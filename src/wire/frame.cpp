#include "wire/frame.hpp"

namespace iw {

std::string msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kError: return "kError";
    case MsgType::kOpenSegment: return "kOpenSegment";
    case MsgType::kOpenSegmentResp: return "kOpenSegmentResp";
    case MsgType::kRegisterType: return "kRegisterType";
    case MsgType::kRegisterTypeResp: return "kRegisterTypeResp";
    case MsgType::kAcquireRead: return "kAcquireRead";
    case MsgType::kAcquireReadResp: return "kAcquireReadResp";
    case MsgType::kReleaseRead: return "kReleaseRead";
    case MsgType::kAcquireWrite: return "kAcquireWrite";
    case MsgType::kAcquireWriteResp: return "kAcquireWriteResp";
    case MsgType::kReleaseWrite: return "kReleaseWrite";
    case MsgType::kReleaseWriteResp: return "kReleaseWriteResp";
    case MsgType::kSegmentInfo: return "kSegmentInfo";
    case MsgType::kSegmentInfoResp: return "kSegmentInfoResp";
    case MsgType::kSubscribe: return "kSubscribe";
    case MsgType::kNotifyVersion: return "kNotifyVersion";
    case MsgType::kPing: return "kPing";
    case MsgType::kPingResp: return "kPingResp";
    case MsgType::kAck: return "kAck";
    case MsgType::kCloseSegment: return "kCloseSegment";
    case MsgType::kHello: return "kHello";
    case MsgType::kHelloResp: return "kHelloResp";
    case MsgType::kRevokeRead: return "kRevokeRead";
    case MsgType::kRevokeAck: return "kRevokeAck";
    case MsgType::kWalAppend: return "kWalAppend";
    case MsgType::kWalAck: return "kWalAck";
    case MsgType::kDirResolve: return "kDirResolve";
    case MsgType::kDirResolveResp: return "kDirResolveResp";
    case MsgType::kPromote: return "kPromote";
    case MsgType::kPromoteResp: return "kPromoteResp";
    case MsgType::kSyncRequest: return "kSyncRequest";
    case MsgType::kSyncChunk: return "kSyncChunk";
    case MsgType::kSyncDone: return "kSyncDone";
    case MsgType::kRecruit: return "kRecruit";
    case MsgType::kRecruitResp: return "kRecruitResp";
  }
  return "kMsg" + std::to_string(static_cast<int>(type));
}

void encode_frame(const Frame& frame, Buffer& out) {
  out.append_u8(static_cast<uint8_t>(frame.type));
  out.append_u32(frame.request_id);
  out.append_u32(static_cast<uint32_t>(frame.payload.size()));
  out.append(frame.payload.data(), frame.payload.size());
}

void encode_frame_header(MsgType type, uint32_t request_id,
                         size_t payload_size, uint8_t out[kFrameHeaderSize]) {
  if (payload_size > kMaxFramePayload) {
    throw Error(ErrorCode::kProtocol, "frame payload too large");
  }
  out[0] = static_cast<uint8_t>(type);
  store_be32(out + 1, request_id);
  store_be32(out + 5, static_cast<uint32_t>(payload_size));
}

FrameHeader decode_frame_header(const uint8_t* header_bytes) {
  FrameHeader h;
  h.type = static_cast<MsgType>(header_bytes[0]);
  h.request_id = load_be32(header_bytes + 1);
  h.payload_size = load_be32(header_bytes + 5);
  if (h.payload_size > kMaxFramePayload) {
    throw Error(ErrorCode::kProtocol, "frame payload too large");
  }
  return h;
}

}  // namespace iw
