// Protocol frames exchanged between InterWeave clients and servers.
//
// Every message is one frame: a fixed header (type, request id, payload
// length) followed by an opaque payload whose layout depends on the type.
// Request/response pairs share a request id; notifications pushed by the
// server use request id 0.
#pragma once

#include <cstdint>
#include <vector>

#include "util/buffer.hpp"

namespace iw {

enum class MsgType : uint8_t {
  kError = 0,            ///< response: lp error-code name, lp message
  kOpenSegment = 1,      ///< lp segment name, u8 create_if_missing
  kOpenSegmentResp = 2,  ///< u32 version, u32 next_block_serial
  kRegisterType = 3,     ///< lp segment name, type graph
  kRegisterTypeResp = 4, ///< u32 type serial (segment-scoped)
  kAcquireRead = 5,      ///< lp segment, u32 cached version, u8 model, u64 param
  kAcquireReadResp = 6,  ///< u8 uptodate, [type table, diff]
  kReleaseRead = 7,      ///< lp segment, [u8 cached: keep lock client-side]
  kAcquireWrite = 8,     ///< lp segment, u32 cached version
  kAcquireWriteResp = 9, ///< u32 next_block_serial, u8 uptodate, [types, diff]
  kReleaseWrite = 10,    ///< lp segment, diff payload
  kReleaseWriteResp = 11,///< u32 new version
  kSegmentInfo = 12,     ///< lp segment name (metadata for space reservation)
  kSegmentInfoResp = 13, ///< block directory: serials, types, names
  kSubscribe = 14,       ///< lp segment
  kNotifyVersion = 15,   ///< notification: lp segment, u32 new version
  kPing = 16,            ///< liveness probe
  kPingResp = 17,
  kAck = 18,             ///< generic empty success response
  kCloseSegment = 19,    ///< lp segment: drop this session's segment state
  kHello = 20,           ///< u64 client id, u32 session epoch (reconnects),
                         ///< [u8 feature bits: bit0 = caches read locks]
  kHelloResp = 21,       ///< u32 writer lease ms (0 = leases disabled),
                         ///< [u8 feature bits: bit0 = server revokes]
  kRevokeRead = 22,      ///< notification: lp segment, u32 revoke_gen —
                         ///< release cached lock, echo gen in the ack
  kRevokeAck = 23,       ///< lp segment, u32 revoke_gen: cached read lock
                         ///< has been dropped (stale gen = ignored)
  // --- federation (server-to-server replication + segment directory) ---
  kWalAppend = 24,       ///< primary -> replica: u32 record count, then per
                         ///< record lp segment, u32 placement epoch, u8 WAL
                         ///< record type, u32 body length, body bytes
  kWalAck = 25,          ///< u32 records journaled (the whole batch)
  kDirResolve = 26,      ///< lp segment url, u32 observed epoch (0 = none),
                         ///< u8 failover: caller found the primary dead
  kDirResolveResp = 27,  ///< u32 placement epoch, u8 node count, then per
                         ///< node lp node id, lp address; first is primary
  kPromote = 28,         ///< directory -> replica: lp segment, u32 new
                         ///< placement epoch — serve as primary from here
  kPromoteResp = 29,     ///< u32 segment version after promotion
  // --- self-healing replication (replica backfill + anti-entropy repair) ---
  kSyncRequest = 30,     ///< replica -> primary: lp segment, u32 have version,
                         ///< u32 have lineage epoch, u32 have type count,
                         ///< u32 want placement epoch (0 = any), u64 cursor
                         ///< (0 starts a sync), lp replica node id, lp replica
                         ///< address (both may be empty: anonymous pull)
  kSyncChunk = 31,       ///< u32 placement epoch, u32 version covered, u8 mode
                         ///< (0 = WAL-tail fold, 1 = snapshot), u8 done, u64
                         ///< next cursor, chunk bytes
  kSyncDone = 32,        ///< replica -> primary: lp segment, lp replica node
                         ///< id, lp replica address, u32 adopted epoch, u32
                         ///< version — flip my link to live kWalAppend tailing
  kRecruit = 33,         ///< repairer -> replica: lp segment, u32 placement
                         ///< epoch, lp primary address — backfill yourself
  kRecruitResp = 34,     ///< u32 placement epoch, u32 version after backfill
};

/// Human-readable name of a MsgType ("kAcquireWrite", ...) for error
/// context; unknown values render as "kMsg<N>".
std::string msg_type_name(MsgType type);

/// One framed protocol message.
struct Frame {
  MsgType type = MsgType::kError;
  uint32_t request_id = 0;
  std::vector<uint8_t> payload;

  BufReader reader() const { return BufReader(payload.data(), payload.size()); }
};

/// Serialized frame header size in bytes (u8 type + u32 id + u32 length).
inline constexpr size_t kFrameHeaderSize = 9;

/// Maximum accepted payload size; guards against corrupt length fields.
inline constexpr uint32_t kMaxFramePayload = 256u << 20;

/// Appends the wire encoding of `frame` to `out`.
void encode_frame(const Frame& frame, Buffer& out);

/// Encodes just the header into a caller-provided kFrameHeaderSize-byte
/// array; the transports pair it with the payload in one vectored send so
/// the payload bytes are never copied into a contiguous frame.
void encode_frame_header(MsgType type, uint32_t request_id,
                         size_t payload_size,
                         uint8_t out[kFrameHeaderSize]);

/// Parses one frame from exactly kFrameHeaderSize header bytes; returns the
/// payload length the caller must then read. Throws Error(kProtocol) on a
/// malformed header.
struct FrameHeader {
  MsgType type;
  uint32_t request_id;
  uint32_t payload_size;
};
FrameHeader decode_frame_header(const uint8_t* header_bytes);

/// Total encoded size of a frame (header + payload) — used by the transport
/// byte accounting that backs the bandwidth experiments.
inline uint64_t frame_wire_size(const Frame& frame) {
  return kFrameHeaderSize + frame.payload.size();
}

}  // namespace iw
