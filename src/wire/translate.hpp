// Translation between a local memory representation and wire format.
//
// This is the paper's Figure-3 machinery: given a block's type descriptor
// (instantiated for some LayoutRules) and a range of *primitive data units*,
// encode_units converts local bytes to canonical wire bytes and decode_units
// does the inverse. Numeric units are byte-order-converted; strings travel
// length-prefixed; pointers are swizzled to/from MIP strings through the
// caller-supplied hooks (the client library implements them with its segment
// metadata, the server with its out-of-line slot tables, tests with fakes).
//
// Both directions execute the type's compiled TranslationPlan (see
// types/translation_plan.hpp): a flattened run program cached per
// (descriptor, LayoutRules), binary-searched to the first requested unit and
// then run as straight-line copy/swap loops. When the plan proves the local
// layout byte-identical to wire format (§3.3 isomorphism), any unit range
// encodes or decodes as a single memcpy. This is what makes InterWeave
// competitive with rpcgen-generated marshaling (Fig. 4).
#pragma once

#include <string>
#include <string_view>

#include "types/registry.hpp"
#include "util/buffer.hpp"

namespace iw {

/// Callbacks that localize the representation-specific pieces of
/// translation: pointer swizzling and string storage.
class TranslationHooks {
 public:
  virtual ~TranslationHooks() = default;

  /// Reads the local pointer representation at `field` and returns the MIP
  /// naming what it points to ("" for null).
  virtual std::string swizzle_out(const void* field) = 0;

  /// Appends the length-prefixed MIP for `field` directly to `out`.
  /// Performance hook: the default routes through swizzle_out; the client
  /// overrides it to format without an intermediate allocation (pointer
  /// swizzling is the hot path for pointer-rich data, Fig. 4/6).
  virtual void swizzle_out_append(const void* field, Buffer& out) {
    out.append_lp_string(swizzle_out(field));
  }

  /// Converts `mip` ("" for null) and stores the local pointer
  /// representation at `field`.
  virtual void swizzle_in(std::string_view mip, void* field) = 0;

  /// Reads the string unit stored at `field`.
  virtual std::string_view read_string(const void* field,
                                       uint32_t capacity) = 0;

  /// Stores `content` into the string unit at `field` (truncating to the
  /// representation's capacity where applicable).
  virtual void write_string(void* field, uint32_t capacity,
                            std::string_view content) = 0;
};

/// Hooks for the client-side inline representation: a string unit is a
/// NUL-padded char[capacity] stored directly in the block. Pointer ops are
/// left abstract.
class InlineStringHooks : public TranslationHooks {
 public:
  std::string_view read_string(const void* field, uint32_t capacity) override;
  void write_string(void* field, uint32_t capacity,
                    std::string_view content) override;
};

/// Hooks that reject pointers and strings outright; usable for purely
/// numeric types (and as a guard in tests).
class NumericOnlyHooks : public TranslationHooks {
 public:
  std::string swizzle_out(const void*) override;
  void swizzle_in(std::string_view, void*) override;
  std::string_view read_string(const void*, uint32_t) override;
  void write_string(void*, uint32_t, std::string_view) override;
};

/// Encodes primitive units [begin, end) of the value at `base` (laid out per
/// `type`, which was instantiated against `rules`) into wire format.
void encode_units(const TypeDescriptor& type, const LayoutRules& rules,
                  const void* base, uint64_t begin, uint64_t end,
                  TranslationHooks& hooks, Buffer& out);

/// Decodes primitive units [begin, end) from wire format into the value at
/// `base`. Consumes exactly the bytes encode_units produced for that range.
void decode_units(const TypeDescriptor& type, const LayoutRules& rules,
                  void* base, uint64_t begin, uint64_t end,
                  TranslationHooks& hooks, BufReader& in);

/// Wire size in bytes that units [begin, end) of `type` would occupy, given
/// the actual current contents at `base` (strings/pointers are variable).
/// Fixed-size runs are measured arithmetically from the plan — no hook is
/// invoked for them, only strings/pointers are read.
uint64_t measure_units(const TypeDescriptor& type, const LayoutRules& rules,
                       const void* base, uint64_t begin, uint64_t end,
                       TranslationHooks& hooks);

// --- legacy recursive reference implementation (test-only) ---------------
//
// The pre-plan translation path: recursive descent over the descriptor tree
// via visit_runs, with the flat-run struct-array fast path. Kept only as
// the reference oracle for the differential tests in wire_translate_test
// and the planned-vs-legacy comparison in bench/translate_plan; production
// code must call the plan-compiled entry points above.

void encode_units_legacy(const TypeDescriptor& type, const LayoutRules& rules,
                         const void* base, uint64_t begin, uint64_t end,
                         TranslationHooks& hooks, Buffer& out);

void decode_units_legacy(const TypeDescriptor& type, const LayoutRules& rules,
                         void* base, uint64_t begin, uint64_t end,
                         TranslationHooks& hooks, BufReader& in);

uint64_t measure_units_legacy(const TypeDescriptor& type,
                              const LayoutRules& rules, const void* base,
                              uint64_t begin, uint64_t end,
                              TranslationHooks& hooks);

}  // namespace iw
