// Relaxed coherence models (paper §3.2), shared by client and server.
//
// A reader chooses how stale its cached copy of a segment may be:
//   Full        — must match the server's current version.
//   Delta(x)    — at most x versions out of date.
//   Temporal(x) — at most x milliseconds out of date (enforced client-side
//                 with a per-segment real-time stamp; when the bound
//                 expires the client asks for the current version).
//   Diff(x)     — at most x percent of the segment's data out of date. The
//                 server tracks, per client, a conservative counter of
//                 bytes modified since the last update it sent (it assumes
//                 all updates touch independent data, per the paper).
#pragma once

#include <cstdint>

namespace iw {

enum class CoherenceModel : uint8_t {
  kFull = 0,
  kDelta = 1,
  kTemporal = 2,
  kDiff = 3,
};

/// Coherence policy a client attaches to a segment: the model plus its
/// parameter x (versions for Delta, milliseconds for Temporal, percent for
/// Diff; ignored for Full).
struct CoherencePolicy {
  CoherenceModel model = CoherenceModel::kFull;
  uint64_t param = 0;

  static CoherencePolicy full() { return {CoherenceModel::kFull, 0}; }
  static CoherencePolicy delta(uint64_t versions) {
    return {CoherenceModel::kDelta, versions};
  }
  static CoherencePolicy temporal(uint64_t ms) {
    return {CoherenceModel::kTemporal, ms};
  }
  static CoherencePolicy diff(uint64_t percent) {
    return {CoherenceModel::kDiff, percent};
  }
};

}  // namespace iw
