#include "wire/translate.hpp"

#include <algorithm>
#include <cstring>

#include "types/translation_plan.hpp"
#include "util/endian.hpp"

namespace iw {

namespace {

// Bulk encode/decode of a homogeneous numeric run. This is the hot loop of
// Figure 4/5: one reservation for the whole run, then tight memcpy or
// byteswap loops (the type-descriptor runs are what let InterWeave beat
// rpcgen's per-element function-pointer dispatch).
template <typename U, bool kSwap>
void encode_numeric_run(const uint8_t* p, uint64_t count, uint32_t stride,
                        Buffer& out) {
  uint8_t* dst = out.extend(count * sizeof(U));
  if (!kSwap && stride == sizeof(U)) {
    std::memcpy(dst, p, count * sizeof(U));
    return;
  }
  for (uint64_t i = 0; i < count; ++i, p += stride, dst += sizeof(U)) {
    U v;
    std::memcpy(&v, p, sizeof(U));
    if constexpr (kSwap) {
      if constexpr (sizeof(U) == 2) v = byteswap16(v);
      if constexpr (sizeof(U) == 4) v = byteswap32(v);
      if constexpr (sizeof(U) == 8) v = byteswap64(v);
    }
    std::memcpy(dst, &v, sizeof(U));
  }
}

template <typename U, bool kSwap>
void decode_numeric_run(uint8_t* p, uint64_t count, uint32_t stride,
                        BufReader& in) {
  auto bytes = in.read_bytes(count * sizeof(U));
  const uint8_t* src = bytes.data();
  if (!kSwap && stride == sizeof(U)) {
    std::memcpy(p, src, count * sizeof(U));
    return;
  }
  for (uint64_t i = 0; i < count; ++i, p += stride, src += sizeof(U)) {
    U v;
    std::memcpy(&v, src, sizeof(U));
    if constexpr (kSwap) {
      if constexpr (sizeof(U) == 2) v = byteswap16(v);
      if constexpr (sizeof(U) == 4) v = byteswap32(v);
      if constexpr (sizeof(U) == 8) v = byteswap64(v);
    }
    std::memcpy(p, &v, sizeof(U));
  }
}

}  // namespace

std::string_view InlineStringHooks::read_string(const void* field,
                                                uint32_t capacity) {
  const char* p = static_cast<const char*>(field);
  size_t len = strnlen(p, capacity);
  return {p, len};
}

void InlineStringHooks::write_string(void* field, uint32_t capacity,
                                     std::string_view content) {
  char* p = static_cast<char*>(field);
  size_t n = content.size() < capacity ? content.size() : capacity;
  std::memcpy(p, content.data(), n);
  if (n < capacity) std::memset(p + n, 0, capacity - n);
}

std::string NumericOnlyHooks::swizzle_out(const void*) {
  throw Error(ErrorCode::kState, "pointer unit with NumericOnlyHooks");
}
void NumericOnlyHooks::swizzle_in(std::string_view, void*) {
  throw Error(ErrorCode::kState, "pointer unit with NumericOnlyHooks");
}
std::string_view NumericOnlyHooks::read_string(const void*, uint32_t) {
  throw Error(ErrorCode::kState, "string unit with NumericOnlyHooks");
}
void NumericOnlyHooks::write_string(void*, uint32_t, std::string_view) {
  throw Error(ErrorCode::kState, "string unit with NumericOnlyHooks");
}

// ------------------------------------------------ plan-compiled hot path

namespace {

/// Encodes `count` units of one kRun op starting at `p`.
void encode_run(const PlanOp& op, const uint8_t* p, uint64_t count, bool swap,
                TranslationHooks& hooks, Buffer& out) {
  switch (op.prim) {
    case PrimitiveKind::kChar:
      if (op.local_stride == 1) {
        out.append(p, count);
      } else {
        for (uint64_t i = 0; i < count; ++i, p += op.local_stride)
          out.append_u8(*p);
      }
      break;
    case PrimitiveKind::kInt16:
      if (swap) {
        encode_numeric_run<uint16_t, true>(p, count, op.local_stride, out);
      } else {
        encode_numeric_run<uint16_t, false>(p, count, op.local_stride, out);
      }
      break;
    case PrimitiveKind::kInt32:
    case PrimitiveKind::kFloat32:
      if (swap) {
        encode_numeric_run<uint32_t, true>(p, count, op.local_stride, out);
      } else {
        encode_numeric_run<uint32_t, false>(p, count, op.local_stride, out);
      }
      break;
    case PrimitiveKind::kInt64:
    case PrimitiveKind::kFloat64:
      if (swap) {
        encode_numeric_run<uint64_t, true>(p, count, op.local_stride, out);
      } else {
        encode_numeric_run<uint64_t, false>(p, count, op.local_stride, out);
      }
      break;
    case PrimitiveKind::kPointer:
      for (uint64_t i = 0; i < count; ++i, p += op.local_stride)
        hooks.swizzle_out_append(p, out);
      break;
    case PrimitiveKind::kString:
      for (uint64_t i = 0; i < count; ++i, p += op.local_stride)
        out.append_lp_string(hooks.read_string(p, op.string_capacity));
      break;
  }
}

void decode_run(const PlanOp& op, uint8_t* p, uint64_t count, bool swap,
                TranslationHooks& hooks, BufReader& in) {
  switch (op.prim) {
    case PrimitiveKind::kChar:
      if (op.local_stride == 1) {
        auto bytes = in.read_bytes(count);
        std::memcpy(p, bytes.data(), bytes.size());
      } else {
        for (uint64_t i = 0; i < count; ++i, p += op.local_stride)
          *p = in.read_u8();
      }
      break;
    case PrimitiveKind::kInt16:
      if (swap) {
        decode_numeric_run<uint16_t, true>(p, count, op.local_stride, in);
      } else {
        decode_numeric_run<uint16_t, false>(p, count, op.local_stride, in);
      }
      break;
    case PrimitiveKind::kInt32:
    case PrimitiveKind::kFloat32:
      if (swap) {
        decode_numeric_run<uint32_t, true>(p, count, op.local_stride, in);
      } else {
        decode_numeric_run<uint32_t, false>(p, count, op.local_stride, in);
      }
      break;
    case PrimitiveKind::kInt64:
    case PrimitiveKind::kFloat64:
      if (swap) {
        decode_numeric_run<uint64_t, true>(p, count, op.local_stride, in);
      } else {
        decode_numeric_run<uint64_t, false>(p, count, op.local_stride, in);
      }
      break;
    case PrimitiveKind::kPointer:
      // read_lp_view: the MIP/string bytes are consumed (copied or
      // resolved) by the hook before the next read, so a view into the
      // input buffer avoids one heap allocation per unit.
      for (uint64_t i = 0; i < count; ++i, p += op.local_stride)
        hooks.swizzle_in(in.read_lp_view(), p);
      break;
    case PrimitiveKind::kString:
      for (uint64_t i = 0; i < count; ++i, p += op.local_stride)
        hooks.write_string(p, op.string_capacity, in.read_lp_view());
      break;
  }
}

/// Straight-line encoder for `count` elements of a fixed-wire-size op list
/// (no strings or pointers anywhere below): writes through a marching
/// destination pointer; the caller reserves the whole output once. The
/// element loop lives *inside* this frame so the per-element cost is just
/// the op loop — recursion only happens per nested aggregate-array op.
/// Returns the advanced destination.
template <bool kSwap>
uint8_t* encode_fixed_elems(const std::vector<PlanOp>& ops,
                            const uint8_t* base, uint64_t count,
                            uint32_t stride, uint8_t* dst) {
  for (uint64_t elem = 0; elem < count; ++elem, base += stride) {
  for (const PlanOp& op : ops) {
    const uint8_t* p = base + op.local_offset;
    if (op.op == PlanOp::Kind::kLoop) {
      dst = encode_fixed_elems<kSwap>(op.elem_plan->ops(), p, op.elem_count,
                                      op.local_stride, dst);
      continue;
    }
    // Local copies: stores through dst alias the plan in the compiler's
    // eyes, and without these it reloads the op fields every iteration.
    const uint64_t n = op.unit_count;
    const uint32_t st = op.local_stride;
    switch (op.prim) {
      case PrimitiveKind::kChar:
        if (st == 1) {
          std::memcpy(dst, p, n);
          dst += n;
        } else {
          for (uint64_t i = 0; i < n; ++i, p += st)
            *dst++ = *p;
        }
        break;
      case PrimitiveKind::kInt16:
        if (!kSwap && st == 2) {
          std::memcpy(dst, p, n * 2);
          dst += n * 2;
        } else {
          for (uint64_t i = 0; i < n;
               ++i, p += st, dst += 2) {
            uint16_t v;
            std::memcpy(&v, p, 2);
            if constexpr (kSwap) v = byteswap16(v);
            std::memcpy(dst, &v, 2);
          }
        }
        break;
      case PrimitiveKind::kInt32:
      case PrimitiveKind::kFloat32:
        if (!kSwap && st == 4) {
          std::memcpy(dst, p, n * 4);
          dst += n * 4;
        } else {
          for (uint64_t i = 0; i < n;
               ++i, p += st, dst += 4) {
            uint32_t v;
            std::memcpy(&v, p, 4);
            if constexpr (kSwap) v = byteswap32(v);
            std::memcpy(dst, &v, 4);
          }
        }
        break;
      default:  // kInt64 / kFloat64 (variable kinds can't occur here)
        if (!kSwap && st == 8) {
          std::memcpy(dst, p, n * 8);
          dst += n * 8;
        } else {
          for (uint64_t i = 0; i < n;
               ++i, p += st, dst += 8) {
            uint64_t v;
            std::memcpy(&v, p, 8);
            if constexpr (kSwap) v = byteswap64(v);
            std::memcpy(dst, &v, 8);
          }
        }
        break;
    }
  }
  }
  return dst;
}

template <bool kSwap>
const uint8_t* decode_fixed_elems(const std::vector<PlanOp>& ops,
                                  uint8_t* base, uint64_t count,
                                  uint32_t stride, const uint8_t* src) {
  for (uint64_t elem = 0; elem < count; ++elem, base += stride) {
  for (const PlanOp& op : ops) {
    uint8_t* p = base + op.local_offset;
    if (op.op == PlanOp::Kind::kLoop) {
      src = decode_fixed_elems<kSwap>(op.elem_plan->ops(), p, op.elem_count,
                                      op.local_stride, src);
      continue;
    }
    const uint64_t n = op.unit_count;
    const uint32_t st = op.local_stride;
    switch (op.prim) {
      case PrimitiveKind::kChar:
        if (st == 1) {
          std::memcpy(p, src, n);
          src += n;
        } else {
          for (uint64_t i = 0; i < n; ++i, p += st)
            *p = *src++;
        }
        break;
      case PrimitiveKind::kInt16:
        if (!kSwap && st == 2) {
          std::memcpy(p, src, n * 2);
          src += n * 2;
        } else {
          for (uint64_t i = 0; i < n;
               ++i, p += st, src += 2) {
            uint16_t v;
            std::memcpy(&v, src, 2);
            if constexpr (kSwap) v = byteswap16(v);
            std::memcpy(p, &v, 2);
          }
        }
        break;
      case PrimitiveKind::kInt32:
      case PrimitiveKind::kFloat32:
        if (!kSwap && st == 4) {
          std::memcpy(p, src, n * 4);
          src += n * 4;
        } else {
          for (uint64_t i = 0; i < n;
               ++i, p += st, src += 4) {
            uint32_t v;
            std::memcpy(&v, src, 4);
            if constexpr (kSwap) v = byteswap32(v);
            std::memcpy(p, &v, 4);
          }
        }
        break;
      default:
        if (!kSwap && st == 8) {
          std::memcpy(p, src, n * 8);
          src += n * 8;
        } else {
          for (uint64_t i = 0; i < n;
               ++i, p += st, src += 8) {
            uint64_t v;
            std::memcpy(&v, src, 8);
            if constexpr (kSwap) v = byteswap64(v);
            std::memcpy(p, &v, 8);
          }
        }
        break;
    }
  }
  }
  return src;
}

void plan_encode(const TranslationPlan& plan, const uint8_t* base,
                 uint64_t begin, uint64_t end, TranslationHooks& hooks,
                 Buffer& out) {
  if (begin >= end) return;
  if (plan.isomorphic()) {
    uint64_t lo = plan.fixed_wire_offset_of(begin);
    uint64_t hi = plan.fixed_wire_offset_of(end);
    out.append(base + lo, hi - lo);
    return;
  }
  const bool swap = plan.swap();
  const std::vector<PlanOp>& ops = plan.ops();
  for (size_t i = plan.op_index(begin); i < ops.size() && begin < end; ++i) {
    const PlanOp& op = ops[i];
    uint64_t b = std::max(begin, op.first_unit);
    uint64_t e = std::min(end, op.first_unit + op.unit_count);
    if (b >= e) continue;
    uint64_t rel = b - op.first_unit;
    if (op.op == PlanOp::Kind::kRun) {
      encode_run(op, base + op.local_offset + rel * op.local_stride, e - b,
                 swap, hooks, out);
    } else {
      uint64_t upe = op.units_per_elem;
      uint64_t rel_end = e - op.first_unit;
      uint64_t el = rel / upe;
      if (rel % upe != 0) {  // ragged head element
        plan_encode(*op.elem_plan,
                    base + op.local_offset + el * op.local_stride,
                    rel - el * upe, std::min(rel_end - el * upe, upe), hooks,
                    out);
        ++el;
      }
      // Whole elements of a fixed-size loop: one reservation for the whole
      // span, then the straight-line compiled element program per element.
      uint64_t whole_end = rel_end / upe;
      if (el < whole_end && !op.elem_plan->variable()) {
        uint64_t count = whole_end - el;
        uint8_t* dst = out.extend(count * op.wire_per_elem);
        const uint8_t* p = base + op.local_offset + el * op.local_stride;
        if (swap) {
          encode_fixed_elems<true>(op.elem_plan->ops(), p, count,
                                   op.local_stride, dst);
        } else {
          encode_fixed_elems<false>(op.elem_plan->ops(), p, count,
                                    op.local_stride, dst);
        }
        el = whole_end;
      }
      for (; el * upe < rel_end; ++el) {  // variable elems / ragged tail
        plan_encode(*op.elem_plan,
                    base + op.local_offset + el * op.local_stride, 0,
                    std::min(rel_end - el * upe, upe), hooks, out);
      }
    }
    begin = e;
  }
}

void plan_decode(const TranslationPlan& plan, uint8_t* base, uint64_t begin,
                 uint64_t end, TranslationHooks& hooks, BufReader& in) {
  if (begin >= end) return;
  if (plan.isomorphic()) {
    uint64_t lo = plan.fixed_wire_offset_of(begin);
    uint64_t hi = plan.fixed_wire_offset_of(end);
    auto bytes = in.read_bytes(hi - lo);
    std::memcpy(base + lo, bytes.data(), bytes.size());
    return;
  }
  const bool swap = plan.swap();
  const std::vector<PlanOp>& ops = plan.ops();
  for (size_t i = plan.op_index(begin); i < ops.size() && begin < end; ++i) {
    const PlanOp& op = ops[i];
    uint64_t b = std::max(begin, op.first_unit);
    uint64_t e = std::min(end, op.first_unit + op.unit_count);
    if (b >= e) continue;
    uint64_t rel = b - op.first_unit;
    if (op.op == PlanOp::Kind::kRun) {
      decode_run(op, base + op.local_offset + rel * op.local_stride, e - b,
                 swap, hooks, in);
    } else {
      uint64_t upe = op.units_per_elem;
      uint64_t rel_end = e - op.first_unit;
      uint64_t el = rel / upe;
      if (rel % upe != 0) {  // ragged head element
        plan_decode(*op.elem_plan,
                    base + op.local_offset + el * op.local_stride,
                    rel - el * upe, std::min(rel_end - el * upe, upe), hooks,
                    in);
        ++el;
      }
      uint64_t whole_end = rel_end / upe;
      if (el < whole_end && !op.elem_plan->variable()) {
        uint64_t count = whole_end - el;
        const uint8_t* src = in.read_bytes(count * op.wire_per_elem).data();
        uint8_t* p = base + op.local_offset + el * op.local_stride;
        if (swap) {
          decode_fixed_elems<true>(op.elem_plan->ops(), p, count,
                                   op.local_stride, src);
        } else {
          decode_fixed_elems<false>(op.elem_plan->ops(), p, count,
                                    op.local_stride, src);
        }
        el = whole_end;
      }
      for (; el * upe < rel_end; ++el) {
        plan_decode(*op.elem_plan,
                    base + op.local_offset + el * op.local_stride, 0,
                    std::min(rel_end - el * upe, upe), hooks, in);
      }
    }
    begin = e;
  }
}

uint64_t plan_measure(const TranslationPlan& plan, const uint8_t* base,
                      uint64_t begin, uint64_t end, TranslationHooks& hooks) {
  if (begin >= end) return 0;
  if (!plan.variable()) {
    // Fixed-size plan: pure arithmetic, no hook calls, no data reads.
    return plan.fixed_wire_offset_of(end) - plan.fixed_wire_offset_of(begin);
  }
  uint64_t total = 0;
  const std::vector<PlanOp>& ops = plan.ops();
  for (size_t i = plan.op_index(begin); i < ops.size() && begin < end; ++i) {
    const PlanOp& op = ops[i];
    uint64_t b = std::max(begin, op.first_unit);
    uint64_t e = std::min(end, op.first_unit + op.unit_count);
    if (b >= e) continue;
    uint64_t rel = b - op.first_unit;
    if (op.op == PlanOp::Kind::kRun) {
      const uint8_t* p = base + op.local_offset + rel * op.local_stride;
      switch (op.prim) {
        case PrimitiveKind::kPointer:
          for (uint64_t u = b; u < e; ++u, p += op.local_stride)
            total += 4 + hooks.swizzle_out(p).size();
          break;
        case PrimitiveKind::kString:
          for (uint64_t u = b; u < e; ++u, p += op.local_stride)
            total += 4 + hooks.read_string(p, op.string_capacity).size();
          break;
        default:
          total += (e - b) * wire_size_of(op.prim);
          break;
      }
    } else {
      uint64_t upe = op.units_per_elem;
      uint64_t rel_end = e - op.first_unit;
      for (uint64_t el = rel / upe; el * upe < rel_end; ++el) {
        uint64_t eb = el * upe;
        uint64_t sub_b = rel > eb ? rel - eb : 0;
        uint64_t sub_e = std::min(rel_end - eb, upe);
        if (!op.elem_plan->variable() && sub_b == 0 && sub_e == upe) {
          // Whole element of a fixed-size loop: arithmetic, no recursion.
          total += op.wire_per_elem;
          continue;
        }
        total += plan_measure(*op.elem_plan,
                              base + op.local_offset + el * op.local_stride,
                              sub_b, sub_e, hooks);
      }
    }
    begin = e;
  }
  return total;
}

}  // namespace

void encode_units(const TypeDescriptor& type, const LayoutRules& rules,
                  const void* base, uint64_t begin, uint64_t end,
                  TranslationHooks& hooks, Buffer& out) {
  if (begin >= end) return;
  const TranslationPlan& plan = TranslationPlan::of(type, rules);
  const size_t start = out.size();
  plan_encode(plan, static_cast<const uint8_t*>(base), begin, end, hooks, out);
#ifndef NDEBUG
  if (!plan.variable()) {
    check_internal(out.size() - start == plan.fixed_wire_offset_of(end) -
                                             plan.fixed_wire_offset_of(begin),
                   "plan encode emitted size != measured size");
  }
#endif
  if (TranslationCounters* c = type.translation_counters()) {
    c->bytes_encoded.fetch_add(out.size() - start, std::memory_order_relaxed);
    if (plan.isomorphic()) {
      c->isomorphic_fast_path_blocks.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void decode_units(const TypeDescriptor& type, const LayoutRules& rules,
                  void* base, uint64_t begin, uint64_t end,
                  TranslationHooks& hooks, BufReader& in) {
  if (begin >= end) return;
  const TranslationPlan& plan = TranslationPlan::of(type, rules);
  const size_t before = in.remaining();
  plan_decode(plan, static_cast<uint8_t*>(base), begin, end, hooks, in);
  if (TranslationCounters* c = type.translation_counters()) {
    c->bytes_decoded.fetch_add(before - in.remaining(),
                               std::memory_order_relaxed);
    if (plan.isomorphic()) {
      c->isomorphic_fast_path_blocks.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

uint64_t measure_units(const TypeDescriptor& type, const LayoutRules& rules,
                       const void* base, uint64_t begin, uint64_t end,
                       TranslationHooks& hooks) {
  if (begin >= end) return 0;
  const TranslationPlan& plan = TranslationPlan::of(type, rules);
  return plan_measure(plan, static_cast<const uint8_t*>(base), begin, end,
                      hooks);
}

// ------------------------- legacy recursive path (test-only reference)

namespace {

/// Per-element encoder over a struct's precomputed flat runs: one buffer
/// reservation for all elements, then tight copy/swap loops. Only valid for
/// fixed-wire-size structs (no strings/pointers).
template <bool kSwap>
void encode_flat_elements(const std::vector<PrimRun>& runs,
                          const uint8_t* first_elem, uint64_t count,
                          uint32_t elem_stride, uint64_t elem_wire,
                          Buffer& out) {
  uint8_t* dst = out.extend(count * elem_wire);
  for (uint64_t e = 0; e < count; ++e, first_elem += elem_stride) {
    for (const PrimRun& run : runs) {
      const uint8_t* p = first_elem + run.local_offset;
      switch (run.kind) {
        case PrimitiveKind::kChar:
          std::memcpy(dst, p, run.unit_count);
          dst += run.unit_count;
          break;
        case PrimitiveKind::kInt16:
          for (uint64_t i = 0; i < run.unit_count;
               ++i, p += run.local_stride, dst += 2) {
            uint16_t v;
            std::memcpy(&v, p, 2);
            if constexpr (kSwap) v = byteswap16(v);
            std::memcpy(dst, &v, 2);
          }
          break;
        case PrimitiveKind::kInt32:
        case PrimitiveKind::kFloat32:
          for (uint64_t i = 0; i < run.unit_count;
               ++i, p += run.local_stride, dst += 4) {
            uint32_t v;
            std::memcpy(&v, p, 4);
            if constexpr (kSwap) v = byteswap32(v);
            std::memcpy(dst, &v, 4);
          }
          break;
        default:  // kInt64 / kFloat64 (variable kinds are excluded)
          for (uint64_t i = 0; i < run.unit_count;
               ++i, p += run.local_stride, dst += 8) {
            uint64_t v;
            std::memcpy(&v, p, 8);
            if constexpr (kSwap) v = byteswap64(v);
            std::memcpy(dst, &v, 8);
          }
          break;
      }
    }
  }
}

template <bool kSwap>
void decode_flat_elements(const std::vector<PrimRun>& runs,
                          uint8_t* first_elem, uint64_t count,
                          uint32_t elem_stride, uint64_t elem_wire,
                          BufReader& in) {
  const uint8_t* src = in.read_bytes(count * elem_wire).data();
  for (uint64_t e = 0; e < count; ++e, first_elem += elem_stride) {
    for (const PrimRun& run : runs) {
      uint8_t* p = first_elem + run.local_offset;
      switch (run.kind) {
        case PrimitiveKind::kChar:
          std::memcpy(p, src, run.unit_count);
          src += run.unit_count;
          break;
        case PrimitiveKind::kInt16:
          for (uint64_t i = 0; i < run.unit_count;
               ++i, p += run.local_stride, src += 2) {
            uint16_t v;
            std::memcpy(&v, src, 2);
            if constexpr (kSwap) v = byteswap16(v);
            std::memcpy(p, &v, 2);
          }
          break;
        case PrimitiveKind::kInt32:
        case PrimitiveKind::kFloat32:
          for (uint64_t i = 0; i < run.unit_count;
               ++i, p += run.local_stride, src += 4) {
            uint32_t v;
            std::memcpy(&v, src, 4);
            if constexpr (kSwap) v = byteswap32(v);
            std::memcpy(p, &v, 4);
          }
          break;
        default:
          for (uint64_t i = 0; i < run.unit_count;
               ++i, p += run.local_stride, src += 8) {
            uint64_t v;
            std::memcpy(&v, src, 8);
            if constexpr (kSwap) v = byteswap64(v);
            std::memcpy(p, &v, 8);
          }
          break;
      }
    }
  }
}

/// When `type` is an array of fast-encodable structs and [begin, end)
/// covers at least one whole element, returns that element range.
struct FlatSpan {
  uint64_t first_elem;
  uint64_t last_elem;  // exclusive
  const TypeDescriptor* elem;
};
bool flat_span(const TypeDescriptor& type, uint64_t begin, uint64_t end,
               FlatSpan* span) {
  if (type.kind() != TypeKind::kArray) return false;
  const TypeDescriptor* elem = type.element();
  if (elem->kind() != TypeKind::kStruct || elem->flat_runs().empty()) {
    return false;
  }
  uint64_t eu = elem->prim_units();
  uint64_t first = (begin + eu - 1) / eu;
  uint64_t last = end / eu;
  if (first >= last) return false;
  span->first_elem = first;
  span->last_elem = last;
  span->elem = elem;
  return true;
}

}  // namespace

void encode_units_legacy(const TypeDescriptor& type, const LayoutRules& rules,
                         const void* base, uint64_t begin, uint64_t end,
                         TranslationHooks& hooks, Buffer& out) {
  const auto* b = static_cast<const uint8_t*>(base);
  const bool local_is_wire_order = rules.byte_order == ByteOrder::kBig;

  FlatSpan span;
  if (flat_span(type, begin, end, &span)) {
    uint64_t eu = span.elem->prim_units();
    if (begin < span.first_elem * eu) {  // ragged head
      encode_units_legacy(type, rules, base, begin, span.first_elem * eu,
                          hooks, out);
    }
    const uint8_t* first = b + span.first_elem * type.element_stride();
    if (local_is_wire_order) {
      encode_flat_elements<false>(span.elem->flat_runs(), first,
                                  span.last_elem - span.first_elem,
                                  type.element_stride(),
                                  span.elem->fixed_wire_size(), out);
    } else {
      encode_flat_elements<true>(span.elem->flat_runs(), first,
                                 span.last_elem - span.first_elem,
                                 type.element_stride(),
                                 span.elem->fixed_wire_size(), out);
    }
    if (span.last_elem * eu < end) {  // ragged tail
      encode_units_legacy(type, rules, base, span.last_elem * eu, end, hooks,
                          out);
    }
    return;
  }

  type.visit_runs(begin, end, [&](const PrimRun& run) {
    const uint8_t* p = b + run.local_offset;
    switch (run.kind) {
      case PrimitiveKind::kChar:
        if (run.local_stride == 1) {
          out.append(p, run.unit_count);
        } else {
          for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride)
            out.append_u8(*p);
        }
        break;
      case PrimitiveKind::kInt16:
        if (local_is_wire_order) {
          encode_numeric_run<uint16_t, false>(p, run.unit_count,
                                              run.local_stride, out);
        } else {
          encode_numeric_run<uint16_t, true>(p, run.unit_count,
                                             run.local_stride, out);
        }
        break;
      case PrimitiveKind::kInt32:
      case PrimitiveKind::kFloat32:
        if (local_is_wire_order) {
          encode_numeric_run<uint32_t, false>(p, run.unit_count,
                                              run.local_stride, out);
        } else {
          encode_numeric_run<uint32_t, true>(p, run.unit_count,
                                             run.local_stride, out);
        }
        break;
      case PrimitiveKind::kInt64:
      case PrimitiveKind::kFloat64:
        if (local_is_wire_order) {
          encode_numeric_run<uint64_t, false>(p, run.unit_count,
                                              run.local_stride, out);
        } else {
          encode_numeric_run<uint64_t, true>(p, run.unit_count,
                                             run.local_stride, out);
        }
        break;
      case PrimitiveKind::kPointer:
        for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride)
          hooks.swizzle_out_append(p, out);
        break;
      case PrimitiveKind::kString:
        for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride)
          out.append_lp_string(hooks.read_string(p, run.string_capacity));
        break;
    }
  });
}

void decode_units_legacy(const TypeDescriptor& type, const LayoutRules& rules,
                         void* base, uint64_t begin, uint64_t end,
                         TranslationHooks& hooks, BufReader& in) {
  auto* b = static_cast<uint8_t*>(base);
  const bool local_is_wire_order = rules.byte_order == ByteOrder::kBig;

  FlatSpan span;
  if (flat_span(type, begin, end, &span)) {
    uint64_t eu = span.elem->prim_units();
    if (begin < span.first_elem * eu) {
      decode_units_legacy(type, rules, base, begin, span.first_elem * eu,
                          hooks, in);
    }
    uint8_t* first = b + span.first_elem * type.element_stride();
    if (local_is_wire_order) {
      decode_flat_elements<false>(span.elem->flat_runs(), first,
                                  span.last_elem - span.first_elem,
                                  type.element_stride(),
                                  span.elem->fixed_wire_size(), in);
    } else {
      decode_flat_elements<true>(span.elem->flat_runs(), first,
                                 span.last_elem - span.first_elem,
                                 type.element_stride(),
                                 span.elem->fixed_wire_size(), in);
    }
    if (span.last_elem * eu < end) {
      decode_units_legacy(type, rules, base, span.last_elem * eu, end, hooks,
                          in);
    }
    return;
  }

  type.visit_runs(begin, end, [&](const PrimRun& run) {
    uint8_t* p = b + run.local_offset;
    switch (run.kind) {
      case PrimitiveKind::kChar:
        if (run.local_stride == 1) {
          auto bytes = in.read_bytes(run.unit_count);
          std::memcpy(p, bytes.data(), bytes.size());
        } else {
          for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride)
            *p = in.read_u8();
        }
        break;
      case PrimitiveKind::kInt16:
        if (local_is_wire_order) {
          decode_numeric_run<uint16_t, false>(p, run.unit_count,
                                              run.local_stride, in);
        } else {
          decode_numeric_run<uint16_t, true>(p, run.unit_count,
                                             run.local_stride, in);
        }
        break;
      case PrimitiveKind::kInt32:
      case PrimitiveKind::kFloat32:
        if (local_is_wire_order) {
          decode_numeric_run<uint32_t, false>(p, run.unit_count,
                                              run.local_stride, in);
        } else {
          decode_numeric_run<uint32_t, true>(p, run.unit_count,
                                             run.local_stride, in);
        }
        break;
      case PrimitiveKind::kInt64:
      case PrimitiveKind::kFloat64:
        if (local_is_wire_order) {
          decode_numeric_run<uint64_t, false>(p, run.unit_count,
                                              run.local_stride, in);
        } else {
          decode_numeric_run<uint64_t, true>(p, run.unit_count,
                                             run.local_stride, in);
        }
        break;
      case PrimitiveKind::kPointer:
        for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride) {
          hooks.swizzle_in(in.read_lp_view(), p);
        }
        break;
      case PrimitiveKind::kString:
        for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride) {
          hooks.write_string(p, run.string_capacity, in.read_lp_view());
        }
        break;
    }
  });
}

uint64_t measure_units_legacy(const TypeDescriptor& type,
                              const LayoutRules& rules, const void* base,
                              uint64_t begin, uint64_t end,
                              TranslationHooks& hooks) {
  (void)rules;
  const auto* b = static_cast<const uint8_t*>(base);
  uint64_t total = 0;
  type.visit_runs(begin, end, [&](const PrimRun& run) {
    switch (run.kind) {
      case PrimitiveKind::kPointer: {
        const uint8_t* p = b + run.local_offset;
        for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride)
          total += 4 + hooks.swizzle_out(p).size();
        break;
      }
      case PrimitiveKind::kString: {
        const uint8_t* p = b + run.local_offset;
        for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride)
          total += 4 + hooks.read_string(p, run.string_capacity).size();
        break;
      }
      default:
        total += run.unit_count * wire_size_of(run.kind);
        break;
    }
  });
  return total;
}

}  // namespace iw
