#include "wire/translate.hpp"

#include <cstring>

#include "util/endian.hpp"

namespace iw {

namespace {

// Bulk encode/decode of a homogeneous numeric run. This is the hot loop of
// Figure 4/5: one reservation for the whole run, then tight memcpy or
// byteswap loops (the type-descriptor runs are what let InterWeave beat
// rpcgen's per-element function-pointer dispatch).
template <typename U, bool kSwap>
void encode_numeric_run(const uint8_t* p, uint64_t count, uint32_t stride,
                        Buffer& out) {
  uint8_t* dst = out.extend(count * sizeof(U));
  if (!kSwap && stride == sizeof(U)) {
    std::memcpy(dst, p, count * sizeof(U));
    return;
  }
  for (uint64_t i = 0; i < count; ++i, p += stride, dst += sizeof(U)) {
    U v;
    std::memcpy(&v, p, sizeof(U));
    if constexpr (kSwap) {
      if constexpr (sizeof(U) == 2) v = byteswap16(v);
      if constexpr (sizeof(U) == 4) v = byteswap32(v);
      if constexpr (sizeof(U) == 8) v = byteswap64(v);
    }
    std::memcpy(dst, &v, sizeof(U));
  }
}

template <typename U, bool kSwap>
void decode_numeric_run(uint8_t* p, uint64_t count, uint32_t stride,
                        BufReader& in) {
  auto bytes = in.read_bytes(count * sizeof(U));
  const uint8_t* src = bytes.data();
  if (!kSwap && stride == sizeof(U)) {
    std::memcpy(p, src, count * sizeof(U));
    return;
  }
  for (uint64_t i = 0; i < count; ++i, p += stride, src += sizeof(U)) {
    U v;
    std::memcpy(&v, src, sizeof(U));
    if constexpr (kSwap) {
      if constexpr (sizeof(U) == 2) v = byteswap16(v);
      if constexpr (sizeof(U) == 4) v = byteswap32(v);
      if constexpr (sizeof(U) == 8) v = byteswap64(v);
    }
    std::memcpy(p, &v, sizeof(U));
  }
}

}  // namespace

std::string_view InlineStringHooks::read_string(const void* field,
                                                uint32_t capacity) {
  const char* p = static_cast<const char*>(field);
  size_t len = strnlen(p, capacity);
  return {p, len};
}

void InlineStringHooks::write_string(void* field, uint32_t capacity,
                                     std::string_view content) {
  char* p = static_cast<char*>(field);
  size_t n = content.size() < capacity ? content.size() : capacity;
  std::memcpy(p, content.data(), n);
  if (n < capacity) std::memset(p + n, 0, capacity - n);
}

std::string NumericOnlyHooks::swizzle_out(const void*) {
  throw Error(ErrorCode::kState, "pointer unit with NumericOnlyHooks");
}
void NumericOnlyHooks::swizzle_in(std::string_view, void*) {
  throw Error(ErrorCode::kState, "pointer unit with NumericOnlyHooks");
}
std::string_view NumericOnlyHooks::read_string(const void*, uint32_t) {
  throw Error(ErrorCode::kState, "string unit with NumericOnlyHooks");
}
void NumericOnlyHooks::write_string(void*, uint32_t, std::string_view) {
  throw Error(ErrorCode::kState, "string unit with NumericOnlyHooks");
}

namespace {

/// Per-element encoder over a struct's precomputed flat runs: one buffer
/// reservation for all elements, then tight copy/swap loops. Only valid for
/// fixed-wire-size structs (no strings/pointers).
template <bool kSwap>
void encode_flat_elements(const std::vector<PrimRun>& runs,
                          const uint8_t* first_elem, uint64_t count,
                          uint32_t elem_stride, uint64_t elem_wire,
                          Buffer& out) {
  uint8_t* dst = out.extend(count * elem_wire);
  for (uint64_t e = 0; e < count; ++e, first_elem += elem_stride) {
    for (const PrimRun& run : runs) {
      const uint8_t* p = first_elem + run.local_offset;
      switch (run.kind) {
        case PrimitiveKind::kChar:
          std::memcpy(dst, p, run.unit_count);
          dst += run.unit_count;
          break;
        case PrimitiveKind::kInt16:
          for (uint64_t i = 0; i < run.unit_count;
               ++i, p += run.local_stride, dst += 2) {
            uint16_t v;
            std::memcpy(&v, p, 2);
            if constexpr (kSwap) v = byteswap16(v);
            std::memcpy(dst, &v, 2);
          }
          break;
        case PrimitiveKind::kInt32:
        case PrimitiveKind::kFloat32:
          for (uint64_t i = 0; i < run.unit_count;
               ++i, p += run.local_stride, dst += 4) {
            uint32_t v;
            std::memcpy(&v, p, 4);
            if constexpr (kSwap) v = byteswap32(v);
            std::memcpy(dst, &v, 4);
          }
          break;
        default:  // kInt64 / kFloat64 (variable kinds are excluded)
          for (uint64_t i = 0; i < run.unit_count;
               ++i, p += run.local_stride, dst += 8) {
            uint64_t v;
            std::memcpy(&v, p, 8);
            if constexpr (kSwap) v = byteswap64(v);
            std::memcpy(dst, &v, 8);
          }
          break;
      }
    }
  }
}

template <bool kSwap>
void decode_flat_elements(const std::vector<PrimRun>& runs,
                          uint8_t* first_elem, uint64_t count,
                          uint32_t elem_stride, uint64_t elem_wire,
                          BufReader& in) {
  const uint8_t* src = in.read_bytes(count * elem_wire).data();
  for (uint64_t e = 0; e < count; ++e, first_elem += elem_stride) {
    for (const PrimRun& run : runs) {
      uint8_t* p = first_elem + run.local_offset;
      switch (run.kind) {
        case PrimitiveKind::kChar:
          std::memcpy(p, src, run.unit_count);
          src += run.unit_count;
          break;
        case PrimitiveKind::kInt16:
          for (uint64_t i = 0; i < run.unit_count;
               ++i, p += run.local_stride, src += 2) {
            uint16_t v;
            std::memcpy(&v, src, 2);
            if constexpr (kSwap) v = byteswap16(v);
            std::memcpy(p, &v, 2);
          }
          break;
        case PrimitiveKind::kInt32:
        case PrimitiveKind::kFloat32:
          for (uint64_t i = 0; i < run.unit_count;
               ++i, p += run.local_stride, src += 4) {
            uint32_t v;
            std::memcpy(&v, src, 4);
            if constexpr (kSwap) v = byteswap32(v);
            std::memcpy(p, &v, 4);
          }
          break;
        default:
          for (uint64_t i = 0; i < run.unit_count;
               ++i, p += run.local_stride, src += 8) {
            uint64_t v;
            std::memcpy(&v, src, 8);
            if constexpr (kSwap) v = byteswap64(v);
            std::memcpy(p, &v, 8);
          }
          break;
      }
    }
  }
}

/// When `type` is an array of fast-encodable structs and [begin, end)
/// covers at least one whole element, returns that element range.
struct FlatSpan {
  uint64_t first_elem;
  uint64_t last_elem;  // exclusive
  const TypeDescriptor* elem;
};
bool flat_span(const TypeDescriptor& type, uint64_t begin, uint64_t end,
               FlatSpan* span) {
  if (type.kind() != TypeKind::kArray) return false;
  const TypeDescriptor* elem = type.element();
  if (elem->kind() != TypeKind::kStruct || elem->flat_runs().empty()) {
    return false;
  }
  uint64_t eu = elem->prim_units();
  uint64_t first = (begin + eu - 1) / eu;
  uint64_t last = end / eu;
  if (first >= last) return false;
  span->first_elem = first;
  span->last_elem = last;
  span->elem = elem;
  return true;
}

}  // namespace

void encode_units(const TypeDescriptor& type, const LayoutRules& rules,
                  const void* base, uint64_t begin, uint64_t end,
                  TranslationHooks& hooks, Buffer& out) {
  const auto* b = static_cast<const uint8_t*>(base);
  const bool local_is_wire_order = rules.byte_order == ByteOrder::kBig;

  FlatSpan span;
  if (flat_span(type, begin, end, &span)) {
    uint64_t eu = span.elem->prim_units();
    if (begin < span.first_elem * eu) {  // ragged head
      encode_units(type, rules, base, begin, span.first_elem * eu, hooks, out);
    }
    const uint8_t* first =
        b + span.first_elem * type.element_stride();
    if (local_is_wire_order) {
      encode_flat_elements<false>(span.elem->flat_runs(), first,
                                  span.last_elem - span.first_elem,
                                  type.element_stride(),
                                  span.elem->fixed_wire_size(), out);
    } else {
      encode_flat_elements<true>(span.elem->flat_runs(), first,
                                 span.last_elem - span.first_elem,
                                 type.element_stride(),
                                 span.elem->fixed_wire_size(), out);
    }
    if (span.last_elem * eu < end) {  // ragged tail
      encode_units(type, rules, base, span.last_elem * eu, end, hooks, out);
    }
    return;
  }

  type.visit_runs(begin, end, [&](const PrimRun& run) {
    const uint8_t* p = b + run.local_offset;
    switch (run.kind) {
      case PrimitiveKind::kChar:
        if (run.local_stride == 1) {
          out.append(p, run.unit_count);
        } else {
          for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride)
            out.append_u8(*p);
        }
        break;
      case PrimitiveKind::kInt16:
        if (local_is_wire_order) {
          encode_numeric_run<uint16_t, false>(p, run.unit_count,
                                              run.local_stride, out);
        } else {
          encode_numeric_run<uint16_t, true>(p, run.unit_count,
                                             run.local_stride, out);
        }
        break;
      case PrimitiveKind::kInt32:
      case PrimitiveKind::kFloat32:
        if (local_is_wire_order) {
          encode_numeric_run<uint32_t, false>(p, run.unit_count,
                                              run.local_stride, out);
        } else {
          encode_numeric_run<uint32_t, true>(p, run.unit_count,
                                             run.local_stride, out);
        }
        break;
      case PrimitiveKind::kInt64:
      case PrimitiveKind::kFloat64:
        if (local_is_wire_order) {
          encode_numeric_run<uint64_t, false>(p, run.unit_count,
                                              run.local_stride, out);
        } else {
          encode_numeric_run<uint64_t, true>(p, run.unit_count,
                                             run.local_stride, out);
        }
        break;
      case PrimitiveKind::kPointer:
        for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride)
          hooks.swizzle_out_append(p, out);
        break;
      case PrimitiveKind::kString:
        for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride)
          out.append_lp_string(hooks.read_string(p, run.string_capacity));
        break;
    }
  });
}

void decode_units(const TypeDescriptor& type, const LayoutRules& rules,
                  void* base, uint64_t begin, uint64_t end,
                  TranslationHooks& hooks, BufReader& in) {
  auto* b = static_cast<uint8_t*>(base);
  const bool local_is_wire_order = rules.byte_order == ByteOrder::kBig;

  FlatSpan span;
  if (flat_span(type, begin, end, &span)) {
    uint64_t eu = span.elem->prim_units();
    if (begin < span.first_elem * eu) {
      decode_units(type, rules, base, begin, span.first_elem * eu, hooks, in);
    }
    uint8_t* first = b + span.first_elem * type.element_stride();
    if (local_is_wire_order) {
      decode_flat_elements<false>(span.elem->flat_runs(), first,
                                  span.last_elem - span.first_elem,
                                  type.element_stride(),
                                  span.elem->fixed_wire_size(), in);
    } else {
      decode_flat_elements<true>(span.elem->flat_runs(), first,
                                 span.last_elem - span.first_elem,
                                 type.element_stride(),
                                 span.elem->fixed_wire_size(), in);
    }
    if (span.last_elem * eu < end) {
      decode_units(type, rules, base, span.last_elem * eu, end, hooks, in);
    }
    return;
  }

  type.visit_runs(begin, end, [&](const PrimRun& run) {
    uint8_t* p = b + run.local_offset;
    switch (run.kind) {
      case PrimitiveKind::kChar:
        if (run.local_stride == 1) {
          auto bytes = in.read_bytes(run.unit_count);
          std::memcpy(p, bytes.data(), bytes.size());
        } else {
          for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride)
            *p = in.read_u8();
        }
        break;
      case PrimitiveKind::kInt16:
        if (local_is_wire_order) {
          decode_numeric_run<uint16_t, false>(p, run.unit_count,
                                              run.local_stride, in);
        } else {
          decode_numeric_run<uint16_t, true>(p, run.unit_count,
                                             run.local_stride, in);
        }
        break;
      case PrimitiveKind::kInt32:
      case PrimitiveKind::kFloat32:
        if (local_is_wire_order) {
          decode_numeric_run<uint32_t, false>(p, run.unit_count,
                                              run.local_stride, in);
        } else {
          decode_numeric_run<uint32_t, true>(p, run.unit_count,
                                             run.local_stride, in);
        }
        break;
      case PrimitiveKind::kInt64:
      case PrimitiveKind::kFloat64:
        if (local_is_wire_order) {
          decode_numeric_run<uint64_t, false>(p, run.unit_count,
                                              run.local_stride, in);
        } else {
          decode_numeric_run<uint64_t, true>(p, run.unit_count,
                                             run.local_stride, in);
        }
        break;
      case PrimitiveKind::kPointer:
        // read_lp_view: the MIP/string bytes are consumed (copied or
        // resolved) by the hook before the next read, so a view into the
        // input buffer avoids one heap allocation per unit.
        for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride) {
          hooks.swizzle_in(in.read_lp_view(), p);
        }
        break;
      case PrimitiveKind::kString:
        for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride) {
          hooks.write_string(p, run.string_capacity, in.read_lp_view());
        }
        break;
    }
  });
}

uint64_t measure_units(const TypeDescriptor& type, const LayoutRules& rules,
                       const void* base, uint64_t begin, uint64_t end,
                       TranslationHooks& hooks) {
  (void)rules;
  const auto* b = static_cast<const uint8_t*>(base);
  uint64_t total = 0;
  type.visit_runs(begin, end, [&](const PrimRun& run) {
    switch (run.kind) {
      case PrimitiveKind::kPointer: {
        const uint8_t* p = b + run.local_offset;
        for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride)
          total += 4 + hooks.swizzle_out(p).size();
        break;
      }
      case PrimitiveKind::kString: {
        const uint8_t* p = b + run.local_offset;
        for (uint64_t i = 0; i < run.unit_count; ++i, p += run.local_stride)
          total += 4 + hooks.read_string(p, run.string_capacity).size();
        break;
      }
      default:
        total += run.unit_count * wire_size_of(run.kind);
        break;
    }
  });
  return total;
}

}  // namespace iw
