#include "wire/diff.hpp"

namespace iw {

DiffWriter::DiffWriter(Buffer& out, uint32_t from_version, uint32_t to_version)
    : out_(out), start_offset_(out.size()) {
  out_.append_u32(from_version);
  out_.append_u32(to_version);
  count_offset_ = out_.append_placeholder_u32();
}

void DiffWriter::add_free(uint32_t serial) {
  check_internal(!in_block_ && !finished_, "add_free inside block");
  out_.append_u32(serial);
  out_.append_u8(diff_flags::kFree);
  ++entries_;
}

void DiffWriter::begin_block(uint32_t serial, uint8_t flags,
                             uint32_t type_serial, std::string_view name) {
  check_internal(!in_block_ && !finished_, "begin_block while block open");
  check_internal((flags & diff_flags::kFree) == 0, "use add_free for frees");
  out_.append_u32(serial);
  out_.append_u8(flags);
  if (flags & diff_flags::kNew) {
    out_.append_u32(type_serial);
    out_.append_lp_string(name);
  }
  block_len_offset_ = out_.append_placeholder_u32();
  block_data_start_ = out_.size();
  in_block_ = true;
  ++entries_;
}

void DiffWriter::begin_run(uint32_t start_unit, uint32_t unit_count) {
  check_internal(in_block_, "begin_run outside block");
  out_.append_u32(start_unit);
  out_.append_u32(unit_count);
}

void DiffWriter::end_block() {
  check_internal(in_block_, "end_block without begin_block");
  out_.patch_u32(block_len_offset_,
                 static_cast<uint32_t>(out_.size() - block_data_start_));
  in_block_ = false;
}

uint64_t DiffWriter::finish() {
  check_internal(!in_block_ && !finished_, "finish with open block");
  out_.patch_u32(count_offset_, entries_);
  finished_ = true;
  return out_.size() - start_offset_;
}

DiffReader::DiffReader(BufReader& in) : in_(in) {
  from_version_ = in_.read_u32();
  to_version_ = in_.read_u32();
  entry_count_ = in_.read_u32();
}

bool DiffReader::next(DiffEntry* entry) {
  if (consumed_ == entry_count_) return false;
  ++consumed_;
  entry->serial = in_.read_u32();
  entry->flags = in_.read_u8();
  entry->type_serial = 0;
  entry->name.clear();
  if (entry->flags & diff_flags::kFree) {
    entry->runs = BufReader(nullptr, 0);
    return true;
  }
  if (entry->flags & diff_flags::kNew) {
    entry->type_serial = in_.read_u32();
    entry->name = in_.read_lp_string();
  }
  uint32_t diff_bytes = in_.read_u32();
  auto section = in_.read_bytes(diff_bytes);
  entry->runs = BufReader(section.data(), section.size());
  return true;
}

DiffRun DiffReader::read_run(BufReader& runs) {
  DiffRun run;
  run.start_unit = runs.read_u32();
  run.unit_count = runs.read_u32();
  return run;
}

}  // namespace iw
