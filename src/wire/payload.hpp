// Shared record codec pipeline: encode → optional LZ compression → CRC32C
// frame. Every byte path that persists or ships diff records — wire update
// frames, the write-ahead log, the replication stream, and checkpoint
// chains — encodes and decodes through this one module, so the framing and
// compression rules exist in exactly one place.
//
// Three layers, separable because the byte paths compose them differently:
//
//  1. An LZ4-style block codec (lz_compress / lz_decompress). Greedy
//     hash-chain matcher, token = (literal-nibble | match-nibble) with
//     255-run length extensions, 2-byte big-endian match offsets, minimum
//     match 4. Written in-repo: no external dependency, and the decoder is
//     hardened — every malformed input is a typed Error(kCorruptPayload),
//     never UB.
//
//  2. Payload envelopes. Record payloads (WAL / replication) prepend
//     `u32 raw_len` to the compressed bytes and mark the record's tag byte
//     with kPayloadCompressedTagBit. Wire diff sections use a leading
//     method byte (payload_method::kRaw keeps the section byte-identical
//     to the pre-compression format so the zero-copy iovec path survives;
//     kLz carries `u32 comp_len | u32 raw_len | bytes`, explicitly sized so
//     trailing frame bytes still parse). Compression is always *measured*:
//     when the encoded bytes would not beat the raw bytes, the raw form is
//     kept and the flag says so.
//
//  3. CRC32C record framing: `u32 body_len | u32 crc | body` where
//     `body := u8 tag | payload` and the CRC covers the whole body. This is
//     the WAL's on-disk record format, reused verbatim by incremental
//     checkpoint chains; RecordScanner is the one decoder (torn or corrupt
//     tails are reported, never thrown) and build_record_prefix /
//     append_framed_record are the one encoder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/buffer.hpp"

namespace iw {

// ---------------------------------------------------------------------------
// LZ block codec
// ---------------------------------------------------------------------------

/// Inputs shorter than this never compress (the token overhead dominates);
/// both compressors bail out early below it.
inline constexpr size_t kMinCompressInput = 64;

/// Compresses `raw` and appends the encoding to `out`. Returns false — with
/// `out` restored to its original size — when the input is too small or the
/// encoding would not be smaller than the input. The encoding is
/// self-contained given the original length (see lz_decompress).
bool lz_compress(std::span<const uint8_t> raw, Buffer& out);

/// Decompresses an lz_compress encoding into `dst`, which must hold exactly
/// `raw_len` bytes. Throws Error(kCorruptPayload) on any malformed input:
/// truncated streams, out-of-range match offsets, or a decoded size other
/// than `raw_len`. Never reads or writes out of bounds.
void lz_decompress(std::span<const uint8_t> comp, uint8_t* dst,
                   size_t raw_len);

/// Convenience form returning a freshly allocated vector of `raw_len` bytes.
std::vector<uint8_t> lz_decompress(std::span<const uint8_t> comp,
                                   size_t raw_len);

// ---------------------------------------------------------------------------
// Record payload envelope (WAL / replication stream)
// ---------------------------------------------------------------------------

/// Set on a framed record's tag byte when its payload is compressed. The
/// low 7 bits keep their original meaning (WalRecordType, chain record
/// kind), so old readers that mask nothing see an unknown type and stop —
/// they never misparse compressed bytes as a diff.
inline constexpr uint8_t kPayloadCompressedTagBit = 0x80;

/// Compresses a record payload (`head` ++ `body`) into `out` as
/// `u32 raw_len | lz bytes`. Returns false — with `out` cleared — when
/// compression does not pay; the caller then journals the raw payload with
/// an unmarked tag, byte-identical to the pre-compression format.
bool compress_record_payload(std::span<const uint8_t> head,
                             std::span<const uint8_t> body, Buffer& out);

/// Inverse of compress_record_payload: parses `u32 raw_len | lz bytes` and
/// returns the raw payload. Throws Error(kCorruptPayload) on malformed
/// input.
std::vector<uint8_t> decompress_record_payload(
    std::span<const uint8_t> payload);

// ---------------------------------------------------------------------------
// Wire diff-section envelope
// ---------------------------------------------------------------------------

namespace payload_method {
/// Section bytes follow unmodified (self-delimiting; parse in place).
inline constexpr uint8_t kRaw = 0;
/// Section is `u32 comp_len | u32 raw_len | comp bytes`.
inline constexpr uint8_t kLz = 1;
}  // namespace payload_method

/// Attempts to compress, in place, the section `buf[method_offset + 1 ..)`
/// of a wire payload whose method byte sits at `method_offset` (already
/// written as kRaw). On success rewrites the tail as a kLz envelope and
/// returns true; otherwise leaves the buffer untouched (raw section, zero
/// extra copies) and returns false. Only the decision is in the frame —
/// the receiver never guesses.
bool compress_section_in_place(Buffer& buf, size_t method_offset);

/// Reads a section envelope's method byte from `in`. For kRaw returns
/// false: the caller parses the (self-delimiting) section straight from
/// `in`. For kLz decompresses into `scratch` and returns true: the caller
/// parses `scratch`, and `in` has been advanced past the compressed bytes
/// so trailing frame fields still line up. Unknown methods and corrupt
/// streams throw Error(kCorruptPayload).
bool read_compressed_section(BufReader& in, std::vector<uint8_t>& scratch);

// ---------------------------------------------------------------------------
// CRC32C record framing
// ---------------------------------------------------------------------------

/// Frame header: `u32 body_len | u32 crc` (big-endian), followed by
/// `body_len` body bytes whose first byte is the tag.
inline constexpr size_t kFramedHeaderBytes = 8;
inline constexpr size_t kFramedPrefixBytes = kFramedHeaderBytes + 1;

/// Sanity ceiling on a single framed record body; anything larger is
/// treated as corruption, not allocated.
inline constexpr size_t kMaxFramedBody = 256u << 20;

/// Fills the 9-byte frame prefix (header + tag) for a record whose body is
/// `tag | head | body`. Callers that scatter-gather (the WAL's writev path)
/// write the prefix and then head/body unchanged.
void build_record_prefix(uint8_t tag, std::span<const uint8_t> head,
                         std::span<const uint8_t> body,
                         uint8_t prefix[kFramedPrefixBytes]);

/// Appends one complete framed record to `out`.
void append_framed_record(Buffer& out, uint8_t tag,
                          std::span<const uint8_t> head,
                          std::span<const uint8_t> body = {});

/// One record surfaced by RecordScanner. `payload` borrows the scanned
/// bytes: valid only while the underlying storage is.
struct ScannedRecord {
  uint8_t tag = 0;
  std::span<const uint8_t> payload;
  uint64_t end_offset = 0;  ///< file offset just past this record
};

/// Streaming decoder over a run of framed records (a WAL journal body, a
/// checkpoint chain body). Corruption and truncation surface as kTorn —
/// the caller decides whether that means "truncate the tail" (WAL) or
/// "quarantine the chain" (checkpoints); the scanner never throws.
class RecordScanner {
 public:
  /// `data` is the byte run after any file header; `base_offset` is that
  /// header's size, so reported offsets are real file offsets.
  RecordScanner(std::span<const uint8_t> data, uint64_t base_offset = 0)
      : data_(data), base_(base_offset) {}

  enum class Status {
    kRecord,  ///< one record scanned
    kEnd,     ///< clean end of input
    kTorn,    ///< truncated or corrupt tail at offset()
  };

  Status next(ScannedRecord* rec);

  /// Offset of the first byte not covered by a cleanly scanned record.
  uint64_t offset() const noexcept { return base_ + pos_; }

  /// Bytes past offset() (the torn tail's size once kTorn is returned).
  uint64_t remaining_bytes() const noexcept { return data_.size() - pos_; }

 private:
  std::span<const uint8_t> data_;
  uint64_t base_;
  size_t pos_ = 0;
};

}  // namespace iw
