// Typed, platform-aware views over shared blocks.
//
// On the native platform, programs access shared data through ordinary
// structs and pointers. A client bound to a *simulated* architecture (or a
// generic tool that does not know the struct at compile time) still needs
// to read and write blocks correctly; View provides that: descriptor-driven
// accessors addressed by primitive unit or by field path, honouring the
// client's byte order, alignment and pointer representation.
//
//   View v(client, block);
//   int32_t id = v.get_i32("header.id");
//   v.set_f64("samples[3]", 2.5);
//   void* next = v.get_ptr("next");
//
// Paths are `field`, `field.sub`, `field[i]`, combined arbitrarily; the
// root may also be indexed when the block is an array ("[7].key").
#pragma once

#include <string>
#include <string_view>

#include "client/client.hpp"

namespace iw::client {

class View {
 public:
  /// View over `block` (must belong to `client`).
  View(Client& client, const BlockHeader* block)
      : View(client, const_cast<BlockHeader*>(block)->data(), block->type) {}

  /// View over raw memory laid out as `type` under the client's platform.
  View(Client& client, uint8_t* base, const TypeDescriptor* type)
      : client_(client), base_(base), type_(type) {}

  const TypeDescriptor* type() const noexcept { return type_; }

  /// Resolves a field path to the primitive unit index it names.
  /// Throws Error(kInvalidArgument) for unknown fields or bad indices.
  uint64_t unit_of(std::string_view path) const;

  // --- by unit index ---
  int64_t get_int(uint64_t unit) const;     ///< any integer kind, widened
  void set_int(uint64_t unit, int64_t v);   ///< any integer kind, narrowed
  double get_f64(uint64_t unit) const;      ///< float32 or float64
  void set_f64(uint64_t unit, double v);
  std::string get_string(uint64_t unit) const;
  void set_string(uint64_t unit, std::string_view v);
  void* get_ptr(uint64_t unit) const;
  void set_ptr(uint64_t unit, void* addr);

  // --- by path ---
  int64_t get_int(std::string_view path) const { return get_int(unit_of(path)); }
  void set_int(std::string_view path, int64_t v) { set_int(unit_of(path), v); }
  double get_f64(std::string_view path) const { return get_f64(unit_of(path)); }
  void set_f64(std::string_view path, double v) { set_f64(unit_of(path), v); }
  std::string get_string(std::string_view path) const {
    return get_string(unit_of(path));
  }
  void set_string(std::string_view path, std::string_view v) {
    set_string(unit_of(path), v);
  }
  void* get_ptr(std::string_view path) const { return get_ptr(unit_of(path)); }
  void set_ptr(std::string_view path, void* addr) {
    set_ptr(unit_of(path), addr);
  }

  /// Convenience: a view of the block `path` points at (follows the
  /// pointer through the client's swizzling tables). Throws when null or
  /// not resolvable to a block.
  View follow(std::string_view path) const;

 private:
  PrimLocation locate(uint64_t unit, PrimitiveKind expect_a,
                      PrimitiveKind expect_b) const;
  uint64_t load_raw(const uint8_t* p, uint32_t size) const;
  void store_raw(uint8_t* p, uint32_t size, uint64_t v) const;

  Client& client_;
  uint8_t* base_;
  const TypeDescriptor* type_;
};

}  // namespace iw::client
