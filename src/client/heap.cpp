#include "client/heap.hpp"

#include <signal.h>
#include <sys/mman.h>

#include <algorithm>
#include <cstring>
#include <mutex>

#include "client/tracking.hpp"
#include "util/endian.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace iw::client {

namespace {
size_t round_up(size_t v, size_t align) { return (v + align - 1) / align * align; }

void* map_pages(size_t bytes) {
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw_errno("mmap subsegment");
  return p;
}
}  // namespace

// ----------------------------------------------------------- FaultRegistry

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry registry;
  return registry;
}

void FaultRegistry::add(Subsegment* subseg) {
  check_internal(count_ < kCapacity, "fault registry full");
  auto begin = reinterpret_cast<uintptr_t>(subseg->base);
  // Insert keeping ranges_ sorted by begin.
  size_t pos = 0;
  while (pos < count_ && ranges_[pos].begin < begin) ++pos;
  seq_.write_begin();
  std::memmove(&ranges_[pos + 1], &ranges_[pos],
               (count_ - pos) * sizeof(Range));
  ranges_[pos] = {begin, begin + subseg->bytes, subseg};
  ++count_;
  seq_.write_end();
}

void FaultRegistry::remove(Subsegment* subseg) {
  auto begin = reinterpret_cast<uintptr_t>(subseg->base);
  size_t pos = 0;
  while (pos < count_ && ranges_[pos].begin != begin) ++pos;
  if (pos == count_) return;
  seq_.write_begin();
  std::memmove(&ranges_[pos], &ranges_[pos + 1],
               (count_ - pos - 1) * sizeof(Range));
  --count_;
  seq_.write_end();
}

Subsegment* FaultRegistry::find(const void* addr) const noexcept {
  auto a = reinterpret_cast<uintptr_t>(addr);
  for (;;) {
    uint32_t s = seq_.read_begin();
    // Binary search over the sorted ranges (no allocation, no locking).
    size_t lo = 0, hi = count_;
    Subsegment* result = nullptr;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (ranges_[mid].begin <= a) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo > 0 && a < ranges_[lo - 1].end) {
      result = ranges_[lo - 1].subseg;
    }
    if (!seq_.read_retry(s)) return result;
  }
}

void FaultRegistry::ensure_handler_installed() {
  static std::once_flag once;
  std::call_once(once, [] { install_sigsegv_handler(); });
}

// -------------------------------------------------------------- SegmentHeap

SegmentHeap::~SegmentHeap() {
  for (auto& subseg : owned_) {
    FaultRegistry::instance().remove(subseg.get());
    drop_all_twins(*subseg);
    ::munmap(subseg->base, subseg->bytes);
  }
}

Subsegment* SegmentHeap::new_subsegment(size_t min_bytes) {
  size_t bytes = round_up(std::max(min_bytes, kDefaultSubsegmentBytes),
                          kPageSize);
  auto subseg = std::make_unique<Subsegment>();
  subseg->segment = segment_;
  subseg->base = static_cast<uint8_t*>(map_pages(bytes));
  subseg->bytes = bytes;
  subseg->twins.assign(bytes / kPageSize, nullptr);
  Subsegment* raw = subseg.get();
  owned_.push_back(std::move(subseg));

  if (last_ == nullptr) {
    first_ = last_ = raw;
  } else {
    last_->next = raw;
    last_ = raw;
  }
  FaultRegistry::instance().add(raw);
  add_free_chunk(raw->base, bytes);
  return raw;
}

void SegmentHeap::write_footer(uint8_t* chunk_start, uint64_t size,
                               bool is_free) {
  store_be64(chunk_start + size - 8, size | (is_free ? 1u : 0u));
}

FreeChunk* SegmentHeap::add_free_chunk(uint8_t* at, uint64_t size) {
  check_internal(size >= kMinChunkBytes && size % 16 == 0, "bad free chunk");
  auto* chunk = reinterpret_cast<FreeChunk*>(at);
  chunk->magic = FreeChunk::kFreeMagic;
  chunk->size = size;
  chunk->prev = nullptr;
  chunk->next = free_head_;
  if (free_head_ != nullptr) free_head_->prev = chunk;
  free_head_ = chunk;
  write_footer(at, size, /*is_free=*/true);
  return chunk;
}

void SegmentHeap::remove_free_chunk(FreeChunk* chunk) {
  if (chunk->prev != nullptr) {
    chunk->prev->next = chunk->next;
  } else {
    free_head_ = chunk->next;
  }
  if (chunk->next != nullptr) chunk->next->prev = chunk->prev;
  chunk->magic = 0;
}

size_t SegmentHeap::free_chunk_count() const noexcept {
  size_t count = 0;
  for (FreeChunk* c = free_head_; c != nullptr; c = c->next) ++count;
  return count;
}

BlockHeader* SegmentHeap::allocate(const TypeDescriptor* type, uint32_t serial,
                                   const std::string* name) {
  const uint64_t need = round_up(
      BlockHeader::kHeaderBytes + type->local_size() + kChunkFooterBytes, 16);

  // First-fit over the free list.
  uint8_t* at = nullptr;
  uint64_t granted = 0;
  for (FreeChunk* chunk = free_head_; chunk != nullptr; chunk = chunk->next) {
    if (chunk->size < need) continue;
    at = reinterpret_cast<uint8_t*>(chunk);
    uint64_t leftover = chunk->size - need;
    remove_free_chunk(chunk);
    if (leftover >= kMinChunkBytes) {
      granted = need;
      add_free_chunk(at + need, leftover);
    } else {
      // Absorb unusable slivers so boundary tags stay wall-to-wall.
      granted = chunk->size;
    }
    break;
  }
  if (at == nullptr) {
    new_subsegment(need);
    // The fresh chunk covering the new subsegment is at the head.
    FreeChunk* chunk = free_head_;
    check_internal(chunk != nullptr && chunk->size >= need,
                   "fresh subsegment too small");
    at = reinterpret_cast<uint8_t*>(chunk);
    uint64_t leftover = chunk->size - need;
    remove_free_chunk(chunk);
    if (leftover >= kMinChunkBytes) {
      granted = need;
      add_free_chunk(at + need, leftover);
    } else {
      granted = need + leftover;
    }
  }
  write_footer(at, granted, /*is_free=*/false);

  auto* block = new (at) BlockHeader();
  block->serial = serial;
  block->data_size = type->local_size();
  block->chunk_bytes = granted;
  block->type = type;
  block->name = name;
  block->subseg = FaultRegistry::instance().find(at);
  check_internal(block->subseg != nullptr, "block outside any subsegment");
  std::memset(block->data(), 0, block->data_size);

  if (!by_serial_.insert(*block)) {
    // Roll back: return the space.
    add_free_chunk(at, granted);
    throw Error(ErrorCode::kAlreadyExists,
                "block serial " + std::to_string(serial));
  }
  if (name != nullptr && !by_name_.insert(*block)) {
    by_serial_.erase(*block);
    add_free_chunk(at, granted);
    throw Error(ErrorCode::kAlreadyExists, "block name '" + *name + "'");
  }
  block->subseg->blocks_by_addr.insert(*block);
  total_units_ += type->prim_units();
  return block;
}

void SegmentHeap::unlink(BlockHeader* block) {
  check_internal(block->magic == BlockHeader::kMagic, "bad block magic");
  by_serial_.erase(*block);
  if (block->name != nullptr) by_name_.erase(*block);
  block->subseg->blocks_by_addr.erase(*block);
  total_units_ -= block->type->prim_units();
}

void SegmentHeap::relink(BlockHeader* block) {
  check_internal(block->magic == BlockHeader::kMagic, "bad block magic");
  check_internal(by_serial_.insert(*block), "relink: serial taken");
  if (block->name != nullptr) {
    check_internal(by_name_.insert(*block), "relink: name taken");
  }
  block->subseg->blocks_by_addr.insert(*block);
  total_units_ += block->type->prim_units();
}

void SegmentHeap::reclaim(BlockHeader* block) {
  Subsegment* subseg = block->subseg;
  auto* start = reinterpret_cast<uint8_t*>(block);
  uint64_t size = block->chunk_bytes;
  block->magic = 0;

  // Boundary-tag coalescing with both neighbours inside this subsegment.
  uint8_t* const seg_lo = subseg->base;
  uint8_t* const seg_hi = subseg->base + subseg->bytes;
  // Forward: is the next chunk a free chunk?
  uint8_t* next_start = start + size;
  if (next_start + kMinChunkBytes <= seg_hi) {
    auto* next = reinterpret_cast<FreeChunk*>(next_start);
    if (next->magic == FreeChunk::kFreeMagic) {
      remove_free_chunk(next);
      size += next->size;
    }
  }
  // Backward: does the previous chunk's footer mark it free?
  if (start - 8 >= seg_lo + 8) {
    uint64_t prev_tag = load_be64(start - 8);
    if (prev_tag & 1) {
      uint64_t prev_size = prev_tag & ~1ULL;
      uint8_t* prev_start = start - prev_size;
      if (prev_start >= seg_lo) {
        auto* prev = reinterpret_cast<FreeChunk*>(prev_start);
        check_internal(prev->magic == FreeChunk::kFreeMagic,
                       "corrupt boundary tag");
        remove_free_chunk(prev);
        start = prev_start;
        size += prev_size;
      }
    }
  }
  add_free_chunk(start, size);
}

void SegmentHeap::release(BlockHeader* block) {
  unlink(block);
  reclaim(block);
}

void SegmentHeap::check_heap() const {
  // Free-list membership count (and list-link sanity).
  size_t free_listed = 0;
  for (FreeChunk* c = free_head_; c != nullptr; c = c->next) {
    check_internal(c->magic == FreeChunk::kFreeMagic, "free list corrupt");
    check_internal(c->next == nullptr || c->next->prev == c,
                   "free list links broken");
    ++free_listed;
  }

  size_t free_walked = 0;
  size_t blocks_walked = 0;
  for (const Subsegment* s = first_; s != nullptr; s = s->next) {
    const uint8_t* p = s->base;
    const uint8_t* end = s->base + s->bytes;
    while (p < end) {
      uint64_t first_word;
      std::memcpy(&first_word, p, 8);
      uint64_t size;
      bool is_free;
      if (first_word == FreeChunk::kFreeMagic) {
        const auto* chunk = reinterpret_cast<const FreeChunk*>(p);
        size = chunk->size;
        is_free = true;
        ++free_walked;
      } else {
        const auto* block = reinterpret_cast<const BlockHeader*>(p);
        check_internal(block->magic == BlockHeader::kMagic,
                       "heap walk hit neither block nor free chunk");
        size = block->chunk_bytes;
        is_free = false;
        check_internal(by_serial_.find(block->serial) ==
                           const_cast<BlockHeader*>(block),
                       "walked block missing from serial tree");
        ++blocks_walked;
      }
      check_internal(size >= kMinChunkBytes && size % 16 == 0 &&
                         p + size <= end,
                     "chunk size corrupt");
      uint64_t tag = load_be64(p + size - 8);
      check_internal((tag & 1) == (is_free ? 1u : 0u), "footer flag wrong");
      check_internal((tag & ~1ULL) == size, "footer size wrong");
      p += size;
    }
    check_internal(p == end, "chunks do not tile the subsegment");
  }
  check_internal(free_walked == free_listed,
                 "free chunks in memory != free chunks on the list");
  check_internal(blocks_walked == by_serial_.size(),
                 "walked blocks != indexed blocks");
}

BlockHeader* SegmentHeap::find_by_serial(uint32_t serial) const {
  return by_serial_.find(serial);
}

BlockHeader* SegmentHeap::find_by_name(const std::string& name) const {
  return by_name_.find(name);
}

BlockHeader* SegmentHeap::find_by_address(const void* addr) const {
  Subsegment* subseg = FaultRegistry::instance().find(addr);
  if (subseg == nullptr || subseg->segment != segment_) return nullptr;
  BlockHeader* block = subseg->blocks_by_addr.floor(
      reinterpret_cast<uintptr_t>(addr));
  if (block == nullptr) return nullptr;
  const uint8_t* a = static_cast<const uint8_t*>(addr);
  if (a < block->data() || a >= block->data() + block->data_size) {
    return nullptr;
  }
  return block;
}

}  // namespace iw::client
