// The InterWeave client library.
//
// A Client is the per-process (or per-simulated-machine) runtime: it caches
// segments in local memory laid out for its Platform, synchronizes them
// with InterWeave servers under reader-writer locks and relaxed coherence,
// collects wire-format diffs of local modifications at write-lock release,
// applies incoming diffs at lock acquisition, and swizzles pointers between
// local addresses and machine-independent pointers (MIPs).
//
// Heterogeneity is first-class: two Clients in one process can be bound to
// different Platforms (say native x86-64 and big-endian 32-bit "sparc32")
// and share a segment through a server; each sees the data in its own
// byte order, alignment and pointer width.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "client/heap.hpp"
#include "client/reconnect.hpp"
#include "client/tracking.hpp"
#include "net/transport.hpp"
#include "types/registry.hpp"
#include "wire/coherence.hpp"
#include "wire/diff.hpp"

namespace iw::client {

/// How local modifications are detected during write critical sections.
enum class TrackingMode : uint8_t {
  kAuto = 0,      ///< VM diffing with adaptive switch to no-diff (§3.3)
  kVmDiff = 1,    ///< always mprotect + SIGSEGV twins + word diffing
  kSoftware = 2,  ///< eager page snapshots at lock acquire; same diffs
  kNoDiff = 3,    ///< always transmit whole blocks, no twins
};

/// Client-side instrumentation. Phase timers separate word diffing from
/// wire-format translation (the two curves of Fig. 5).
struct ClientStats {
  uint64_t read_lock_server_calls = 0;
  uint64_t read_lock_local_hits = 0;  ///< satisfied without communication

  // Distributed lock caching (reader locks retained across release).
  uint64_t lock_cache_hits = 0;    ///< acquires satisfied by a cached lock
  uint64_t lock_cache_misses = 0;  ///< acquires that paid the RPC anyway
  uint64_t revokes_acked = 0;      ///< kRevokeRead callbacks honoured
  uint64_t sublet_grants = 0;      ///< extra local threads under one lock
  uint64_t updates_applied = 0;
  uint64_t diffs_collected = 0;
  uint64_t diffs_compressed = 0;  ///< releases whose diff section shrank
  uint64_t word_diff_ns = 0;
  uint64_t translate_ns = 0;
  uint64_t collect_ns = 0;
  uint64_t apply_ns = 0;
  uint64_t swizzles_out = 0;
  uint64_t swizzles_in = 0;
  uint64_t prediction_hits = 0;
  uint64_t prediction_misses = 0;
  uint64_t units_sent = 0;
  uint64_t diff_releases = 0;
  uint64_t no_diff_releases = 0;
  uint64_t block_no_diff_emissions = 0;  ///< blocks sent whole by block mode

  // Plan-compiled translation counters, merged from the client's type
  // registry (see types/translation_plan.hpp).
  uint64_t bytes_encoded = 0;
  uint64_t bytes_decoded = 0;
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t isomorphic_fast_path_blocks = 0;

  // Fault-tolerance counters, aggregated from the client's channels (the
  // reconnect supervisor maintains them; raw channels report zeros except
  // for TCP call deadlines).
  uint64_t reconnects = 0;
  uint64_t retried_calls = 0;
  uint64_t call_timeouts = 0;
  /// From-scratch diffs applied over an already-populated cache — the
  /// signature of converging on a server that recovered behind us.
  uint64_t full_resyncs = 0;
};

class Client;

/// A locally cached segment. Created via Client::open_segment; owned by the
/// Client. All mutation goes through Client methods.
class ClientSegment {
 public:
  const std::string& url() const noexcept { return url_; }
  uint32_t version() const noexcept { return version_; }
  bool write_locked() const noexcept { return write_locked_; }
  int read_locks() const noexcept { return read_locks_; }
  const SegmentHeap& heap() const noexcept { return heap_; }
  bool no_diff_active() const noexcept { return no_diff_active_; }

 private:
  friend class Client;
  friend class ClientHooks;
  ClientSegment(Client* client, std::string url,
                std::shared_ptr<ClientChannel> channel)
      : client_(client), url_(std::move(url)), channel_(std::move(channel)),
        heap_(this) {}

  Client* client_;
  std::string url_;
  std::shared_ptr<ClientChannel> channel_;
  SegmentHeap heap_;

  uint32_t version_ = 0;      // version of the locally cached copy
  uint32_t next_serial_ = 0;  // valid while write-locked
  /// Channel session epoch this segment's server-side state (subscription,
  /// sent-type prefix) belongs to; a mismatch at lock time means the
  /// connection was rebuilt and the state must be re-established.
  uint64_t channel_epoch_ = 0;
  /// Forces the next lock acquisition to consult the server even when the
  /// coherence model would not (set after reconnects and failed releases).
  bool needs_revalidation_ = false;
  int read_locks_ = 0;
  bool write_locked_ = false;
  CoherencePolicy policy_ = CoherencePolicy::full();
  int64_t last_update_ns_ = 0;

  std::vector<const TypeDescriptor*> types_;  // serial-1 -> descriptor
  std::unordered_map<const TypeDescriptor*, uint32_t> type_serials_;
  std::deque<std::string> name_arena_;

  /// Release-path collect buffer, reused across write-lock cycles (the
  /// channel consumes the bytes but leaves the allocation behind).
  Buffer collect_buf_;

  // Current write critical section.
  TrackingMode active_tracking_ = TrackingMode::kNoDiff;
  std::vector<BlockHeader*> new_blocks_;
  std::vector<uint32_t> freed_serials_;
  bool in_transaction_ = false;
  /// Blocks freed inside a transaction: unlinked from the trees but their
  /// storage is kept until commit (abort relinks them).
  std::vector<BlockHeader*> deferred_frees_;

  // No-diff adaptation (kAuto).
  bool no_diff_active_ = false;
  uint32_t no_diff_probe_countdown_ = 0;
};

class Client {
 public:
  struct Options {
    Platform platform = Platform::native();
    TrackingMode tracking = TrackingMode::kAuto;
    /// Unmodified-word gap spliced into a run (0 disables splicing, §3.3).
    uint32_t splice_gap_words = 2;
    /// Modified fraction above which kAuto switches to no-diff mode.
    double no_diff_threshold = 0.75;
    /// No-diff critical sections between diffing probes.
    uint32_t no_diff_probe_period = 8;
    /// Per-block no-diff mode: individual blocks that are repeatedly
    /// modified almost entirely travel whole and skip page protection.
    bool per_block_no_diff = true;
    /// Last-block prediction when applying diffs (§3.3).
    bool last_block_prediction = true;
    /// Subscribe to server version notifications (adaptive polling).
    bool subscribe_notifications = true;
    /// Retain reader locks across read_unlock and satisfy repeat acquires
    /// from the cache with zero RPCs, honouring server kRevokeRead
    /// callbacks. Needs auto_reconnect (the hello handshake negotiates it);
    /// the IW_LOCK_CACHE environment variable overrides this ("0" off,
    /// anything else on).
    bool cache_read_locks = true;
    /// Negotiate payload compression (wire/payload.hpp) in the hello and,
    /// when the server confirms, exchange diff sections behind the
    /// method-byte envelope in both directions. Needs auto_reconnect for
    /// the handshake; the IW_COMPRESS environment variable overrides this
    /// ("0" off, anything else on).
    bool compress_payloads = true;
    /// Wrap every channel in a ReconnectingChannel: transport failures tear
    /// the connection down, reconnect with backoff under a new session
    /// epoch, and re-send idempotent calls. Disable for tests that drive
    /// raw channels or assert exact failure propagation.
    bool auto_reconnect = true;
    /// Backoff/retry tuning for the reconnect supervisor.
    ReconnectingChannel::Options reconnect;
    /// Isomorphic type descriptors etc.
    TypeRegistry::Options type_options;
  };

  /// Maps a host name (the part of a segment URL before the first '/') to a
  /// channel. Lets tests wire clients to in-process or TCP servers.
  using ChannelFactory =
      std::function<std::shared_ptr<ClientChannel>(const std::string& host)>;

  Client(ChannelFactory factory, Options options);
  explicit Client(ChannelFactory factory) : Client(std::move(factory), Options{}) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  const Options& options() const noexcept { return options_; }
  /// The client's type registry (bound to its platform layout). Build or
  /// IDL-register shared types here.
  TypeRegistry& types() noexcept { return registry_; }

  /// Opens (and with `create`, possibly creates) the segment at `url`
  /// ("host/name"). Idempotent per client.
  ClientSegment* open_segment(const std::string& url, bool create = true);

  /// Drops the local cache of `segment` (the server copy is untouched).
  /// No locks may be held; every local pointer into the segment — including
  /// cross-segment pointers cached in other segments — becomes invalid,
  /// exactly as with a plain unmap. Reopening refetches on first lock.
  void close_segment(ClientSegment* segment);

  /// Sets the coherence policy governing this client's read locks.
  void set_coherence(ClientSegment* segment, CoherencePolicy policy);

  // --- reader/writer locks (paper §2.2) ---
  void read_lock(ClientSegment* segment);
  void read_unlock(ClientSegment* segment);
  void write_lock(ClientSegment* segment);
  void write_unlock(ClientSegment* segment);

  // --- transactions (paper §6 future work) ---
  // A transaction is a write critical section that can be rolled back:
  // twins hold the pre-images, so abort restores every modified byte,
  // discards blocks allocated inside the transaction, and resurrects
  // blocks freed inside it. Commit behaves exactly like write_unlock.
  // Twin-based tracking is forced for the duration (a no-diff client uses
  // the software backend), and frees are deferred until commit so their
  // storage stays intact for rollback.
  void begin_transaction(ClientSegment* segment);
  void commit_transaction(ClientSegment* segment);
  void abort_transaction(ClientSegment* segment);

  // --- allocation (requires write lock) ---
  /// Allocates a block of `type`; optional symbolic name (must not be all
  /// digits). Returns the block's data address, zero-initialized.
  void* malloc_block(ClientSegment* segment, const TypeDescriptor* type,
                     const std::string& name = {});
  void free_block(ClientSegment* segment, void* data);

  // --- machine-independent pointers ---
  /// Converts a local address (into any cached block of this client) to a
  /// MIP "url#block#unit".
  std::string ptr_to_mip(const void* ptr);
  /// Converts a MIP to a local address, reserving address space for the
  /// target segment if it is not yet cached. "" maps to nullptr.
  void* mip_to_ptr(const std::string& mip);

  // --- local pointer representation (platform-dependent) ---
  /// Reads/writes the pointer representation at `field` (a pointer unit in
  /// some block). On non-native platforms pointers are table tokens; these
  /// helpers are how tests and simulated apps dereference them.
  void* read_pointer_field(const void* field) const;
  void write_pointer_field(void* field, void* addr);

  /// Snapshot of the client counters plus the registry's translation
  /// counters and the channels' fault counters (by value: the translation
  /// side is sampled from relaxed atomics at call time).
  ClientStats stats() const {
    std::lock_guard lock(mu_);
    ClientStats s = stats_;
    TranslationStats t = registry_.translation_stats();
    s.bytes_encoded = t.bytes_encoded;
    s.bytes_decoded = t.bytes_decoded;
    s.plan_cache_hits = t.plan_cache_hits;
    s.plan_cache_misses = t.plan_cache_misses;
    s.isomorphic_fast_path_blocks = t.isomorphic_fast_path_blocks;
    for (const auto& [host, channel] : channels_) {
      ChannelFaultStats f = channel->fault_stats();
      s.reconnects += f.reconnects;
      s.retried_calls += f.retried_calls;
      s.call_timeouts += f.call_timeouts;
    }
    s.lock_cache_hits = lock_cache_hits_.load(std::memory_order_relaxed);
    s.lock_cache_misses = lock_cache_misses_.load(std::memory_order_relaxed);
    s.revokes_acked = revokes_acked_.load(std::memory_order_relaxed);
    s.sublet_grants = sublet_grants_.load(std::memory_order_relaxed);
    return s;
  }
  void reset_stats() noexcept {
    stats_ = ClientStats{};
    registry_.reset_translation_stats();
    lock_cache_hits_.store(0, std::memory_order_relaxed);
    lock_cache_misses_.store(0, std::memory_order_relaxed);
    revokes_acked_.store(0, std::memory_order_relaxed);
    sublet_grants_.store(0, std::memory_order_relaxed);
  }
  /// Total bytes across all channels (bandwidth accounting).
  uint64_t bytes_sent() const;
  uint64_t bytes_received() const;

 private:
  friend class ClientHooks;
  friend class ClientSegment;

  std::shared_ptr<ClientChannel> channel_for(const std::string& url);
  ClientSegment* segment_for_url_locked(const std::string& url, bool create);
  ClientSegment* reserve_remote_segment_locked(const std::string& url);
  uint32_t ensure_type_registered_locked(ClientSegment* seg,
                                         const TypeDescriptor* type);
  /// Parses an update payload (status/types/diff) and applies it.
  bool apply_update_locked(ClientSegment* seg, BufReader& in);
  void apply_diff_locked(ClientSegment* seg, BufReader& diff);
  void collect_and_release_locked(ClientSegment* seg);
  /// Re-establishes server-side session state (subscription, freshness)
  /// when the segment's channel was rebuilt under a new session epoch.
  void revalidate_if_reconnected_locked(ClientSegment* seg);
  /// A kReleaseWrite failed (transport died or lease reclaimed): the
  /// outcome is unknown, so drop the critical-section state and force a
  /// from-0 resync on the next lock. The caller rethrows; the application
  /// retries the critical section.
  void recover_failed_release_locked(ClientSegment* seg);
  void begin_tracking_locked(ClientSegment* seg);
  void end_tracking_locked(ClientSegment* seg);
  bool read_needs_server_locked(ClientSegment* seg) const;
  std::string ptr_to_mip_locked(const void* ptr);
  void ptr_to_mip_append_locked(const void* ptr, Buffer& out);
  BlockHeader* resolve_ptr_locked(const void* ptr);
  void* mip_to_ptr_locked(std::string_view mip);
  uint32_t latest_known_version(const std::string& url) const;
  void note_version(const std::string& url, uint32_t version);
  /// kRevokeRead arrived for `url`: surrender the cached lock immediately
  /// when no local reader holds it, else mark it for release (and ack) at
  /// critical-section exit. Runs on notification threads — must not take
  /// mu_ and must not issue RPCs itself; it enqueues the ack for
  /// revoke_ack_loop(). `ch` is the channel the ack goes out on.
  void handle_revoke(const std::string& url, uint32_t gen,
                     const std::weak_ptr<ClientChannel>& ch);
  /// Dedicated ack thread: sends kRevokeAck for each queued revoke,
  /// swallowing transport errors (a dead connection surrenders the cached
  /// lock via on_disconnect anyway). Acks are RPCs that can block, fail,
  /// and tear the channel down for reconnection — none of which may happen
  /// on a channel's own notification thread, so this worker owns them all.
  void revoke_ack_loop();
  /// Drops any cached read lock state for `url` without acking (used when
  /// the server-side session is already gone: reconnect, close, recovery).
  void forget_cached_lock(const std::string& url);
  BlockHeader* next_block_in_memory(BlockHeader* block) const;
  const TypeDescriptor* type_by_serial(ClientSegment* seg,
                                       uint32_t serial) const;

  mutable std::mutex mu_;
  Options options_;
  bool native_pointers_;
  TypeRegistry registry_;
  ChannelFactory factory_;
  std::unordered_map<std::string, std::shared_ptr<ClientChannel>> channels_;
  std::unordered_map<std::string, std::unique_ptr<ClientSegment>> segments_;

  // Pointer-token table for non-native platforms.
  std::vector<void*> ptr_tokens_;
  std::unordered_map<const void*, uint32_t> token_by_ptr_;
  /// One-entry segment cache for MIP resolution (guarded by mu_; reset when
  /// segments are destroyed — they never are today).
  ClientSegment* mip_cache_seg_ = nullptr;
  /// One-entry block cache for ptr->MIP swizzling; invalidated whenever any
  /// block is released.
  BlockHeader* mip_cache_block_ = nullptr;

  // Latest segment versions learned from notifications/responses; guarded
  // by notify_mu_ only (the notify handler must not take mu_).
  mutable std::mutex notify_mu_;
  std::unordered_map<std::string, uint32_t> latest_versions_;

  /// One cached reader lock per segment URL.
  struct LockCacheEntry {
    bool cached = false;   ///< server granted and has not revoked/expired
    bool revoked = false;  ///< revoke received while readers are inside
    int active = 0;        ///< local readers currently inside under it
    uint32_t revoke_gen = 0;  ///< generation of the deferred revoke, echoed
                              ///< in the ack sent at critical-section exit
  };
  /// Leaf lock (after mu_ in the ordering; notify handlers take it alone).
  mutable std::mutex lock_cache_mu_;
  std::unordered_map<std::string, LockCacheEntry> lock_cache_;
  /// cache_read_locks resolved against IW_LOCK_CACHE and auto_reconnect.
  bool lock_cache_enabled_ = false;
  // Lock-cache counters are atomics, not ClientStats fields: the revoke
  // path bumps them without mu_.
  std::atomic<uint64_t> lock_cache_hits_{0};
  std::atomic<uint64_t> lock_cache_misses_{0};
  std::atomic<uint64_t> revokes_acked_{0};
  std::atomic<uint64_t> sublet_grants_{0};
  /// Pending kRevokeAck sends, drained by revoke_ack_worker_. Guarded by
  /// lock_cache_mu_ (the enqueue sites already hold it). The shared_ptr
  /// keeps the channel alive until the ack lands; if the worker ends up
  /// holding the last reference, the channel is destroyed on the worker
  /// thread — never on its own notification thread.
  struct RevokeAck {
    std::string url;
    uint32_t gen = 0;  ///< server's revocation generation, echoed back
    std::shared_ptr<ClientChannel> channel;
  };
  std::deque<RevokeAck> revoke_ack_queue_;
  std::condition_variable revoke_ack_cv_;
  bool revoke_ack_stop_ = false;
  std::thread revoke_ack_worker_;

  ClientStats stats_;
};

}  // namespace iw::client
