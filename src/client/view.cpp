#include "client/view.hpp"

#include <charconv>

namespace iw::client {

namespace {

[[noreturn]] void bad_path(std::string_view path, const std::string& why) {
  throw Error(ErrorCode::kInvalidArgument,
              "field path '" + std::string(path) + "': " + why);
}

}  // namespace

uint64_t View::unit_of(std::string_view path) const {
  const TypeDescriptor* t = type_;
  uint64_t unit = 0;
  std::string_view rest = path;
  while (!rest.empty()) {
    if (rest.front() == '.') rest.remove_prefix(1);
    if (rest.empty()) break;
    if (rest.front() == '[') {
      // Array index.
      auto close = rest.find(']');
      if (close == std::string_view::npos) bad_path(path, "missing ']'");
      std::string_view num = rest.substr(1, close - 1);
      uint64_t index = 0;
      auto [end, ec] = std::from_chars(num.data(), num.data() + num.size(), index);
      if (ec != std::errc() || end != num.data() + num.size()) {
        bad_path(path, "bad array index");
      }
      if (t->kind() != TypeKind::kArray) bad_path(path, "not an array");
      if (index >= t->count()) bad_path(path, "index out of range");
      unit += index * t->element()->prim_units();
      t = t->element();
      rest.remove_prefix(close + 1);
      continue;
    }
    // Field name up to the next '.' or '['.
    size_t cut = rest.find_first_of(".[");
    std::string_view name = rest.substr(0, cut);
    rest.remove_prefix(cut == std::string_view::npos ? rest.size() : cut);
    if (t->kind() != TypeKind::kStruct) bad_path(path, "not a struct");
    const TypeDescriptor::Field* found = nullptr;
    for (const auto& f : t->fields()) {
      if (f.name == name) {
        found = &f;
        break;
      }
    }
    if (found == nullptr) {
      // Note: the isomorphic transform merges runs of same-kind scalar
      // fields into synthetic arrays named "first..last"; address those by
      // the synthetic name plus an index.
      bad_path(path, "no field '" + std::string(name) + "' in struct " +
                         t->struct_name());
    }
    unit += found->prim_offset;
    t = found->type;
  }
  return unit;
}

PrimLocation View::locate(uint64_t unit, PrimitiveKind expect_a,
                          PrimitiveKind expect_b) const {
  PrimLocation loc = type_->locate_prim(unit);
  if (loc.kind != expect_a && loc.kind != expect_b) {
    throw Error(ErrorCode::kInvalidArgument,
                std::string("unit is a ") + primitive_kind_name(loc.kind));
  }
  return loc;
}

uint64_t View::load_raw(const uint8_t* p, uint32_t size) const {
  const LayoutRules& rules = client_.options().platform.rules;
  uint64_t v = 0;
  if (rules.byte_order == ByteOrder::kBig) {
    for (uint32_t i = 0; i < size; ++i) v = (v << 8) | p[i];
  } else {
    for (uint32_t i = size; i > 0; --i) v = (v << 8) | p[i - 1];
  }
  return v;
}

void View::store_raw(uint8_t* p, uint32_t size, uint64_t v) const {
  const LayoutRules& rules = client_.options().platform.rules;
  if (rules.byte_order == ByteOrder::kBig) {
    for (uint32_t i = size; i > 0; --i) {
      p[i - 1] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  } else {
    for (uint32_t i = 0; i < size; ++i) {
      p[i] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
}

int64_t View::get_int(uint64_t unit) const {
  PrimLocation loc = type_->locate_prim(unit);
  const uint8_t* p = base_ + loc.local_offset;
  switch (loc.kind) {
    case PrimitiveKind::kChar:
      return static_cast<int8_t>(*p);
    case PrimitiveKind::kInt16:
      return static_cast<int16_t>(load_raw(p, 2));
    case PrimitiveKind::kInt32:
      return static_cast<int32_t>(load_raw(p, 4));
    case PrimitiveKind::kInt64:
      return static_cast<int64_t>(load_raw(p, 8));
    default:
      throw Error(ErrorCode::kInvalidArgument, "unit is not an integer");
  }
}

void View::set_int(uint64_t unit, int64_t v) {
  PrimLocation loc = type_->locate_prim(unit);
  uint8_t* p = base_ + loc.local_offset;
  switch (loc.kind) {
    case PrimitiveKind::kChar:
      *p = static_cast<uint8_t>(v);
      return;
    case PrimitiveKind::kInt16:
      store_raw(p, 2, static_cast<uint64_t>(v));
      return;
    case PrimitiveKind::kInt32:
      store_raw(p, 4, static_cast<uint64_t>(v));
      return;
    case PrimitiveKind::kInt64:
      store_raw(p, 8, static_cast<uint64_t>(v));
      return;
    default:
      throw Error(ErrorCode::kInvalidArgument, "unit is not an integer");
  }
}

double View::get_f64(uint64_t unit) const {
  PrimLocation loc =
      locate(unit, PrimitiveKind::kFloat32, PrimitiveKind::kFloat64);
  const uint8_t* p = base_ + loc.local_offset;
  if (loc.kind == PrimitiveKind::kFloat32) {
    return std::bit_cast<float>(static_cast<uint32_t>(load_raw(p, 4)));
  }
  return std::bit_cast<double>(load_raw(p, 8));
}

void View::set_f64(uint64_t unit, double v) {
  PrimLocation loc =
      locate(unit, PrimitiveKind::kFloat32, PrimitiveKind::kFloat64);
  uint8_t* p = base_ + loc.local_offset;
  if (loc.kind == PrimitiveKind::kFloat32) {
    store_raw(p, 4, std::bit_cast<uint32_t>(static_cast<float>(v)));
  } else {
    store_raw(p, 8, std::bit_cast<uint64_t>(v));
  }
}

std::string View::get_string(uint64_t unit) const {
  PrimLocation loc =
      locate(unit, PrimitiveKind::kString, PrimitiveKind::kString);
  const char* p = reinterpret_cast<const char*>(base_) + loc.local_offset;
  return std::string(p, strnlen(p, loc.string_capacity));
}

void View::set_string(uint64_t unit, std::string_view v) {
  PrimLocation loc =
      locate(unit, PrimitiveKind::kString, PrimitiveKind::kString);
  char* p = reinterpret_cast<char*>(base_) + loc.local_offset;
  size_t n = std::min<size_t>(v.size(), loc.string_capacity);
  std::memcpy(p, v.data(), n);
  if (n < loc.string_capacity) std::memset(p + n, 0, loc.string_capacity - n);
}

void* View::get_ptr(uint64_t unit) const {
  PrimLocation loc =
      locate(unit, PrimitiveKind::kPointer, PrimitiveKind::kPointer);
  return client_.read_pointer_field(base_ + loc.local_offset);
}

void View::set_ptr(uint64_t unit, void* addr) {
  PrimLocation loc =
      locate(unit, PrimitiveKind::kPointer, PrimitiveKind::kPointer);
  client_.write_pointer_field(base_ + loc.local_offset, addr);
}

View View::follow(std::string_view path) const {
  void* addr = get_ptr(unit_of(path));
  if (addr == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "null pointer at " + std::string(path));
  }
  Subsegment* subseg = FaultRegistry::instance().find(addr);
  if (subseg == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "pointer outside any segment");
  }
  BlockHeader* block = subseg->segment->heap().find_by_address(addr);
  if (block == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "pointer not inside a block");
  }
  return View(client_, const_cast<uint8_t*>(block->data()), block->type);
}

}  // namespace iw::client
