#include "client/reconnect.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/logging.hpp"

namespace iw::client {

namespace {

std::atomic<uint64_t> g_next_client_id{1};

}  // namespace

ReconnectingChannel::ReconnectingChannel(Connector connect, Options options)
    : connect_(std::move(connect)),
      options_(options),
      client_id_(g_next_client_id.fetch_add(1)),
      jitter_(options.jitter_seed != 0 ? options.jitter_seed
                                       : 0x9e3779b97f4a7c15ull ^ client_id_) {
  std::lock_guard lock(mu_);
  connect_locked();
}

void ReconnectingChannel::connect_locked() {
  std::shared_ptr<ClientChannel> ch = connect_();
  if (ch == nullptr) {
    throw Error::transport(ErrorCode::kIo, "connector returned no channel");
  }
  if (notify_) ch->set_notify_handler(notify_);
  ++epoch_;
  if (options_.hello_on_connect) {
    Buffer hello;
    hello.append_u64(client_id_);
    hello.append_u32(static_cast<uint32_t>(epoch_));
    hello.append_u8((options_.announce_lock_caching ? 1 : 0) |
                    (options_.announce_payload_compression ? 2 : 0));
    Frame resp = ch->call(MsgType::kHello, std::move(hello));
    BufReader r = resp.reader();
    server_lease_ms_ = r.read_u32();
    // Trailing feature bits + revocation deadline are absent from
    // pre-lock-caching servers; their absence means "no revocation" and
    // "no compression" — the old byte stream in both directions.
    lock_caching_ok_ = false;
    payload_compression_ok_ = false;
    server_revoke_deadline_ms_ = 0;
    if (r.remaining() >= 1) {
      uint8_t features = r.read_u8();
      lock_caching_ok_ = options_.announce_lock_caching && (features & 1) != 0;
      payload_compression_ok_ =
          options_.announce_payload_compression && (features & 2) != 0;
      if (r.remaining() >= 4) server_revoke_deadline_ms_ = r.read_u32();
    }
  }
  inner_ = std::move(ch);
}

void ReconnectingChannel::reconnect_locked(
    const std::shared_ptr<ClientChannel>& failed) {
  if (inner_ != failed) return;  // someone else already replaced it
  if (inner_ != nullptr) {
    dead_bytes_sent_ += inner_->bytes_sent();
    dead_bytes_received_ += inner_->bytes_received();
    // shutdown() before dropping the reference: the server's on_disconnect
    // releases any writer lock the dead session held, which is what makes
    // re-sending an acquire on the new session safe — and it must happen
    // *now*, not when the last shared_ptr dies. The background revoke-ack
    // worker can pin the old channel with an in-flight call; deferring the
    // disconnect to its schedule would leave a zombie session holding
    // locks and receiving notifications for a scheduling-dependent while.
    inner_->shutdown();
    inner_.reset();
  }
  Error last = Error::transport(ErrorCode::kIo, "reconnect never attempted");
  uint32_t backoff = options_.initial_backoff_ms;
  for (uint32_t attempt = 0; attempt < options_.max_reconnect_attempts;
       ++attempt) {
    if (attempt > 0) {
      // Half-to-full jitter keeps a herd of clients from reconnecting in
      // lockstep after a shared outage.
      uint32_t ms = backoff / 2 +
                    static_cast<uint32_t>(jitter_.below(backoff / 2 + 1));
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      backoff = std::min(backoff * 2, std::max(1u, options_.max_backoff_ms));
    }
    try {
      connect_locked();
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      return;
    } catch (const Error& e) {
      last = e;
      IW_LOG(kDebug) << "reconnect attempt " << (attempt + 1) << "/"
                     << options_.max_reconnect_attempts
                     << " failed: " << e.what();
    }
  }
  throw last;
}

Frame ReconnectingChannel::call(MsgType type, Buffer& payload) {
  // Revoke acks are fire-and-forget: one attempt on whatever channel is
  // live, no reconnect and no retry/timeout accounting. They run on the
  // client's background ack worker, so entering the reconnect machinery
  // here would bump reconnects_/retried_calls_ at thread-scheduling whim —
  // and the chaos suite asserts those counters are bit-reproducible per
  // seed. Dropping the ack is safe: the server retires a cached-read
  // registration implicitly on disconnect, on a denied re-acquire, or at
  // the revocation deadline.
  if (type == MsgType::kRevokeAck) {
    std::shared_ptr<ClientChannel> inner;
    {
      std::lock_guard lock(mu_);
      inner = inner_;
    }
    if (inner == nullptr) {
      throw Error::transport(ErrorCode::kIo, "no channel for revoke ack");
    }
    return inner->call(type, payload);
  }
  // Replaying a release after a *transport* loss is unsafe: a response lost
  // after the server applied the diff would be re-applied against a moved
  // base version, and the disconnect already dropped the lock either way.
  // Everything else is idempotent once the old session is gone. (A
  // kStaleEpoch *response* is different — see below — so the snapshot is
  // captured for releases too.)
  const bool replayable = type != MsgType::kReleaseWrite;
  Buffer snapshot;
  snapshot.append(payload.data(), payload.size());

  for (uint32_t retry = 0;; ++retry) {
    std::shared_ptr<ClientChannel> inner;
    {
      std::lock_guard lock(mu_);
      if (inner_ == nullptr) reconnect_locked(nullptr);
      inner = inner_;
    }
    try {
      return inner->call(type, payload);
    } catch (const Error& e) {
      // A kStaleEpoch response means the server has been deposed by a newer
      // placement epoch — and, crucially, that it did NOT apply the request
      // (the fence rejects before any effect). Reconnecting re-runs the
      // connector, which re-resolves the placement with failover and lands
      // on the promoted primary; the request is then safe to replay there,
      // releases included (unlike a transport loss, where a release's fate
      // is unknown).
      const bool stale =
          !e.is_transport() && e.code() == ErrorCode::kStaleEpoch;
      if (!stale && !is_retryable_transport(e)) throw;
      if (e.code() == ErrorCode::kTimedOut) {
        call_timeouts_.fetch_add(1, std::memory_order_relaxed);
      }
      {
        std::lock_guard lock(mu_);
        reconnect_locked(inner);  // throws when the server stays down
      }
      if ((!replayable && !stale) || retry + 1 >= options_.max_call_retries) {
        throw;
      }
      retried_calls_.fetch_add(1, std::memory_order_relaxed);
      payload.clear();
      payload.append(snapshot.data(), snapshot.size());
    }
  }
}

void ReconnectingChannel::set_notify_handler(
    std::function<void(const Frame&)> fn) {
  std::lock_guard lock(mu_);
  notify_ = std::move(fn);
  if (inner_ != nullptr) inner_->set_notify_handler(notify_);
}

uint64_t ReconnectingChannel::bytes_sent() const {
  std::lock_guard lock(mu_);
  return dead_bytes_sent_ + (inner_ ? inner_->bytes_sent() : 0);
}

uint64_t ReconnectingChannel::bytes_received() const {
  std::lock_guard lock(mu_);
  return dead_bytes_received_ + (inner_ ? inner_->bytes_received() : 0);
}

uint64_t ReconnectingChannel::session_epoch() const {
  std::lock_guard lock(mu_);
  return epoch_;
}

uint32_t ReconnectingChannel::server_lease_ms() const {
  std::lock_guard lock(mu_);
  return server_lease_ms_;
}

bool ReconnectingChannel::supports_lock_caching() const {
  std::lock_guard lock(mu_);
  return lock_caching_ok_;
}

bool ReconnectingChannel::supports_payload_compression() const {
  std::lock_guard lock(mu_);
  return payload_compression_ok_;
}

uint32_t ReconnectingChannel::server_revoke_deadline_ms() const {
  std::lock_guard lock(mu_);
  return server_revoke_deadline_ms_;
}

ChannelFaultStats ReconnectingChannel::fault_stats() const {
  ChannelFaultStats s;
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.retried_calls = retried_calls_.load(std::memory_order_relaxed);
  // Timeouts are tallied here (one per caught kTimedOut) rather than summed
  // with the inner channel's own counter, which would double-count the
  // same events.
  s.call_timeouts = call_timeouts_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace iw::client
