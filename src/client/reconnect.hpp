// ReconnectingChannel: the client-side fault-tolerance supervisor.
//
// A ClientChannel decorator that rebuilds its inner channel when a call
// fails with a retryable transport error (connection reset, broken pipe,
// I/O failure, call deadline). Recovery is teardown-then-reconnect:
// destroying the dead channel triggers the server's on_disconnect — which
// releases any writer lock the old session held — before a fresh channel
// (and fresh server session) is established with exponential backoff and
// jitter. Each successful reconnect starts a new *session epoch*; the
// owning Client compares epochs at lock acquisition to know its
// server-side session state (subscriptions, sent-type prefix) is gone and
// its notification-derived freshness can no longer be trusted.
//
// Idempotent calls are re-sent transparently on the new channel. The one
// exception is kReleaseWrite: when the transport dies mid-release it is
// unknowable whether the server applied the diff, and replaying it is
// wrong in either case (applied: the lock is gone and the base version has
// moved; not applied: the lock was released by the disconnect). The
// channel reconnects for the benefit of later calls but rethrows the
// failure; the Client recovers by invalidating its cached copy and the
// application retries the critical section.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>

#include "net/transport.hpp"
#include "util/rand.hpp"

namespace iw::client {

class ReconnectingChannel final : public ClientChannel {
 public:
  struct Options {
    /// Reconnect attempts before a failed call is surfaced.
    uint32_t max_reconnect_attempts = 5;
    /// Backoff before reconnect attempt N is roughly
    /// min(initial << (N-1), max), halved-to-full jittered.
    uint32_t initial_backoff_ms = 5;
    uint32_t max_backoff_ms = 500;
    /// Re-sends of one call across reconnects before giving up.
    uint32_t max_call_retries = 8;
    /// Jitter seed; 0 derives one from the channel's client id.
    uint64_t jitter_seed = 0;
    /// Send kHello (client id + session epoch) after every connect; the
    /// response carries the server's writer-lease duration.
    bool hello_on_connect = true;
    /// Announce client-side lock caching in the hello feature bits; the
    /// negotiation succeeds only if the server answers that it revokes
    /// (see supports_lock_caching()).
    bool announce_lock_caching = false;
    /// Announce payload compression in the hello feature bits; effective
    /// only when the server confirms it in its response (see
    /// supports_payload_compression()).
    bool announce_payload_compression = false;
  };

  /// Builds the underlying channel; called once at construction and again
  /// on every reconnect. Must throw (rather than return nullptr) when the
  /// server is unreachable.
  using Connector = std::function<std::shared_ptr<ClientChannel>()>;

  /// Connects eagerly: construction fails if the first connect does (no
  /// retries — an unreachable server at open time is an immediate error,
  /// exactly as with a raw channel).
  ReconnectingChannel(Connector connect, Options options);

  using ClientChannel::call;
  Frame call(MsgType type, Buffer& payload) override;
  void set_notify_handler(std::function<void(const Frame&)> fn) override;
  uint64_t bytes_sent() const override;
  uint64_t bytes_received() const override;
  uint64_t session_epoch() const override;
  ChannelFaultStats fault_stats() const override;

  /// Writer-lease duration announced by the server in kHelloResp (0 when
  /// leases are disabled or hello_on_connect is off).
  uint32_t server_lease_ms() const;
  /// True when both sides negotiated lock caching on the current
  /// connection.
  bool supports_lock_caching() const override;
  /// True when both sides negotiated payload compression on the current
  /// connection.
  bool supports_payload_compression() const override;
  /// Revocation deadline announced by the server (0 = unknown/disabled).
  uint32_t server_revoke_deadline_ms() const;

 private:
  /// Replaces inner_ with a fresh connection, bumps the epoch, replays the
  /// hello handshake and re-installs the notify handler. Caller holds mu_.
  void connect_locked();
  /// Tears down `failed` (if it is still current) and reconnects with
  /// backoff; throws the last connect error after max_reconnect_attempts.
  /// No-op when another thread already replaced the channel.
  void reconnect_locked(const std::shared_ptr<ClientChannel>& failed);

  mutable std::mutex mu_;
  Connector connect_;
  Options options_;
  std::shared_ptr<ClientChannel> inner_;
  uint64_t client_id_;
  uint64_t epoch_ = 0;  // connect_locked() makes the first connection epoch 1
  uint32_t server_lease_ms_ = 0;
  bool lock_caching_ok_ = false;
  bool payload_compression_ok_ = false;
  uint32_t server_revoke_deadline_ms_ = 0;
  /// Byte counters of dead channel incarnations, folded in at teardown so
  /// bandwidth accounting survives reconnects.
  uint64_t dead_bytes_sent_ = 0;
  uint64_t dead_bytes_received_ = 0;
  std::function<void(const Frame&)> notify_;
  SplitMix64 jitter_;

  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> retried_calls_{0};
  std::atomic<uint64_t> call_timeouts_{0};
};

}  // namespace iw::client
