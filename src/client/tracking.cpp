#include "client/tracking.hpp"

#include <signal.h>
#include <sys/mman.h>

#include <atomic>
#include <cstring>

#include "util/error.hpp"

namespace iw::client {

namespace {

std::atomic<uint64_t> g_fault_count{0};
struct sigaction g_previous_action;

/// Twin page pool: pages released by drop_all_twins are parked here (up to
/// kTwinPoolCap) and reused by the next fault instead of a fresh mmap, so a
/// steady-state write-lock cycle does no map/unmap syscalls at all.
///
/// The pool is guarded by an atomic_flag spinlock. The fault path (a signal
/// handler) only *try-locks*: atomic_flag operations are async-signal-safe,
/// and no code inside the critical section can fault on tracked memory, so
/// a contended flag just means "fall back to mmap" — never a deadlock.
constexpr size_t kTwinPoolCap = 256;
std::atomic_flag g_twin_pool_lock = ATOMIC_FLAG_INIT;
uint8_t* g_twin_pool[kTwinPoolCap];
size_t g_twin_pool_size = 0;

/// Pops a pooled page, or nullptr when the pool is empty or the lock is
/// contended. Async-signal-safe.
uint8_t* twin_pool_pop() noexcept {
  if (g_twin_pool_lock.test_and_set(std::memory_order_acquire)) {
    return nullptr;  // contended: caller falls back to mmap
  }
  uint8_t* page = nullptr;
  if (g_twin_pool_size > 0) {
    page = g_twin_pool[--g_twin_pool_size];
  }
  g_twin_pool_lock.clear(std::memory_order_release);
  return page;
}

/// Parks a page in the pool; returns false (caller munmaps) when full.
/// Called from normal context only, so spinning on the lock is fine.
bool twin_pool_push(uint8_t* page) noexcept {
  while (g_twin_pool_lock.test_and_set(std::memory_order_acquire)) {
  }
  bool parked = false;
  if (g_twin_pool_size < kTwinPoolCap) {
    g_twin_pool[g_twin_pool_size++] = page;
    parked = true;
  }
  g_twin_pool_lock.clear(std::memory_order_release);
  return parked;
}

uint8_t* map_twin_page() noexcept {
  uint8_t* pooled = twin_pool_pop();
  if (pooled != nullptr) return pooled;
  void* p = ::mmap(nullptr, kPageSize, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  return p == MAP_FAILED ? nullptr : static_cast<uint8_t*>(p);
}

void release_twin_page(uint8_t* page) noexcept {
  if (!twin_pool_push(page)) ::munmap(page, kPageSize);
}

/// Creates the twin for `page` if absent (CAS per slot) and re-enables
/// writes. Async-signal-safe: mmap/mprotect/memcpy only.
bool handle_write_fault(Subsegment* subseg, void* addr) noexcept {
  size_t page = (reinterpret_cast<uintptr_t>(addr) -
                 reinterpret_cast<uintptr_t>(subseg->base)) /
                kPageSize;
  uint8_t* page_start = subseg->base + page * kPageSize;
  auto* slot = reinterpret_cast<std::atomic<uint8_t*>*>(&subseg->twins[page]);
  if (slot->load(std::memory_order_acquire) == nullptr) {
    uint8_t* twin = map_twin_page();
    if (twin == nullptr) return false;  // out of memory: let it crash
    std::memcpy(twin, page_start, kPageSize);
    uint8_t* expected = nullptr;
    if (!slot->compare_exchange_strong(expected, twin,
                                       std::memory_order_acq_rel)) {
      ::munmap(twin, kPageSize);  // another thread won the race
    }
  }
  subseg->any_twin.store(true, std::memory_order_release);
  ::mprotect(page_start, kPageSize, PROT_READ | PROT_WRITE);
  g_fault_count.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void sigsegv_handler(int signo, siginfo_t* info, void* context) {
  if (info != nullptr && info->si_addr != nullptr) {
    Subsegment* subseg = FaultRegistry::instance().find(info->si_addr);
    if (subseg != nullptr && handle_write_fault(subseg, info->si_addr)) {
      return;
    }
  }
  // Not our fault: chain to the previous handler or re-raise with default.
  if (g_previous_action.sa_flags & SA_SIGINFO) {
    if (g_previous_action.sa_sigaction != nullptr) {
      g_previous_action.sa_sigaction(signo, info, context);
      return;
    }
  } else if (g_previous_action.sa_handler != SIG_DFL &&
             g_previous_action.sa_handler != SIG_IGN &&
             g_previous_action.sa_handler != nullptr) {
    g_previous_action.sa_handler(signo);
    return;
  }
  ::signal(SIGSEGV, SIG_DFL);
  ::raise(SIGSEGV);
}

}  // namespace

void install_sigsegv_handler() {
  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_sigaction = sigsegv_handler;
  action.sa_flags = SA_SIGINFO | SA_NODEFER;
  sigemptyset(&action.sa_mask);
  if (::sigaction(SIGSEGV, &action, &g_previous_action) != 0) {
    throw_errno("sigaction(SIGSEGV)");
  }
}

uint64_t fault_count() noexcept {
  return g_fault_count.load(std::memory_order_relaxed);
}

void protect_subsegment(Subsegment& subseg) {
  if (::mprotect(subseg.base, subseg.bytes, PROT_READ) != 0) {
    throw_errno("mprotect(PROT_READ)");
  }
}

void protect_subsegment_except(Subsegment& subseg,
                               const std::vector<bool>& skip) {
  check_internal(skip.size() == subseg.page_count(), "skip vector size");
  size_t page = 0;
  while (page < skip.size()) {
    if (skip[page]) {
      ++page;
      continue;
    }
    size_t first = page;
    while (page < skip.size() && !skip[page]) ++page;
    if (::mprotect(subseg.base + first * kPageSize,
                   (page - first) * kPageSize, PROT_READ) != 0) {
      throw_errno("mprotect(PROT_READ) range");
    }
  }
}

void unprotect_subsegment(Subsegment& subseg) {
  if (::mprotect(subseg.base, subseg.bytes, PROT_READ | PROT_WRITE) != 0) {
    throw_errno("mprotect(PROT_READ|PROT_WRITE)");
  }
}

void twin_all_pages(Subsegment& subseg) {
  for (size_t page = 0; page < subseg.page_count(); ++page) {
    if (subseg.twins[page] != nullptr) continue;
    uint8_t* twin = map_twin_page();
    if (twin == nullptr) throw_errno("mmap twin");
    std::memcpy(twin, subseg.base + page * kPageSize, kPageSize);
    subseg.twins[page] = twin;
  }
  subseg.any_twin.store(true, std::memory_order_release);
}

void drop_all_twins(Subsegment& subseg) {
  for (auto& twin : subseg.twins) {
    if (twin != nullptr) {
      release_twin_page(twin);
      twin = nullptr;
    }
  }
  subseg.any_twin.store(false, std::memory_order_release);
}

void diff_words(const uint8_t* cur, const uint8_t* twin, size_t bytes,
                uint32_t splice_gap_words, std::vector<ByteRange>& out) {
  check_internal(bytes % 4 == 0, "diff_words needs word-multiple size");
  const size_t n = bytes / 4;
  // Unaligned-safe word loads via memcpy (compilers lower this to a load).
  auto word = [](const uint8_t* p, size_t i) {
    uint32_t v;
    std::memcpy(&v, p + i * 4, 4);
    return v;
  };
  auto dword = [](const uint8_t* p, size_t i) {
    uint64_t v;
    std::memcpy(&v, p + i * 4, 8);
    return v;
  };
  size_t i = 0;
  while (i < n) {
    // SWAR fast-skip: compare doublewords (two words at a time) while the
    // region is unchanged; drop to 32-bit granularity only inside a
    // mismatching doubleword. Skips only positions the scalar loop would
    // also skip, so the output ranges are byte-identical.
    while (i + 1 < n && dword(cur, i) == dword(twin, i)) {
      i += 2;
    }
    if (i >= n) break;
    if (word(cur, i) == word(twin, i)) {
      ++i;
      continue;
    }
    const size_t start = i;
    size_t last = i;
    ++i;
    while (i < n) {
      if (word(cur, i) != word(twin, i)) {
        last = i;
        ++i;
      } else if (i - last <= splice_gap_words) {
        ++i;  // tentative gap; spliced if another change follows soon
      } else {
        break;
      }
    }
    out.push_back({static_cast<uint32_t>(start * 4),
                   static_cast<uint32_t>((last + 1) * 4)});
  }
}

}  // namespace iw::client
