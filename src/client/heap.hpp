// Client-side segment heap: subsegments, blocks, and metadata trees.
//
// A cached segment need not be contiguous in the client's address space; it
// is a chain of page-aligned *subsegments* (mmap regions, any integral
// number of pages), each holding block headers + data and free space. This
// mirrors Figure 2 of the paper:
//
//   * per segment:  blk_number_tree, blk_name_tree, free list, subseg chain
//   * per subsegment: pagemap (twin pointers) and blk_addr_tree
//   * per client:   subseg_addr_tree (all segments, sorted by address)
//
// Any given page contains data from only one segment, which is what makes
// page-fault write tracking attribute faults correctly.
//
// The FaultRegistry is the process-global, async-signal-safe table the
// SIGSEGV handler uses to map a faulting address to its subsegment.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "types/type_desc.hpp"
#include "util/avl_tree.hpp"
#include "util/seqlock.hpp"

namespace iw::client {

inline constexpr size_t kPageSize = 4096;
/// Default subsegment size when a block fits (larger blocks get their own).
inline constexpr size_t kDefaultSubsegmentBytes = 64 * 1024;

class ClientSegment;  // defined in client.hpp
struct Subsegment;

/// Header preceding every block's data in heap memory. `data()` is aligned
/// to 16 bytes, enough for any primitive on any modelled platform.
struct BlockHeader {
  uint32_t magic = kMagic;
  uint32_t serial = 0;
  uint32_t data_size = 0;
  uint64_t chunk_bytes = 0;  ///< total heap chunk size incl header+footer
  bool created_this_cs = false;  ///< allocated under the current write lock

  /// Per-block no-diff mode (paper §3.3): a block repeatedly modified
  /// almost entirely is transmitted whole, skipping twins and diffing.
  bool block_no_diff = false;
  uint8_t nodiff_streak = 0;   ///< consecutive mostly-modified sections
  uint8_t nodiff_probe = 0;    ///< whole-block sections left until re-probe
  const TypeDescriptor* type = nullptr;
  Subsegment* subseg = nullptr;
  const std::string* name = nullptr;  ///< owned by the segment's name arena

  AvlHook number_hook;
  AvlHook name_hook;
  AvlHook addr_hook;

  static constexpr uint32_t kMagic = 0x49574231;  // "IWB1"
  static constexpr size_t kHeaderBytes = 160;     // data() offset; asserted

  uint8_t* data() noexcept {
    return reinterpret_cast<uint8_t*>(this) + kHeaderBytes;
  }
  const uint8_t* data() const noexcept {
    return reinterpret_cast<const uint8_t*>(this) + kHeaderBytes;
  }
  static BlockHeader* from_data(void* p) noexcept {
    return reinterpret_cast<BlockHeader*>(static_cast<uint8_t*>(p) -
                                          kHeaderBytes);
  }
};
static_assert(sizeof(BlockHeader) <= BlockHeader::kHeaderBytes);
static_assert(BlockHeader::kHeaderBytes % 16 == 0);

/// Free-space chunk threaded through heap memory. Every chunk — free or
/// allocated — also carries an 8-byte *footer* (its size, with bit 0 set
/// when free) so release() can coalesce with both neighbours in O(1), the
/// classic boundary-tag scheme (the paper's block/free-space footers).
struct FreeChunk {
  uint64_t magic = 0;  // kFreeMagic
  uint64_t size = 0;   // total bytes including header and footer
  FreeChunk* next = nullptr;
  FreeChunk* prev = nullptr;

  static constexpr uint64_t kFreeMagic = 0x49574652'45455F5FULL;  // IWFREE__
};
inline constexpr size_t kChunkFooterBytes = 16;  // 8 used, 16 kept for align
inline constexpr size_t kMinChunkBytes =
    sizeof(FreeChunk) + kChunkFooterBytes;

struct BlockAddrOf {
  uintptr_t operator()(const BlockHeader& b) const {
    return reinterpret_cast<uintptr_t>(&b);
  }
};
using BlockAddrTree = AvlTree<BlockHeader, &BlockHeader::addr_hook, BlockAddrOf>;

/// One contiguous page-aligned piece of a segment's local copy.
struct Subsegment {
  ClientSegment* segment = nullptr;
  uint8_t* base = nullptr;
  size_t bytes = 0;  // page multiple
  Subsegment* next = nullptr;

  /// Pagemap: twin pointer per page; written by the SIGSEGV handler.
  std::vector<uint8_t*> twins;
  /// Set by the handler so diff collection can skip clean subsegments.
  std::atomic<bool> any_twin{false};

  AvlHook addr_hook;  // in the client-global subseg_addr_tree
  BlockAddrTree blocks_by_addr;

  size_t page_count() const noexcept { return bytes / kPageSize; }
  bool contains(const void* p) const noexcept {
    auto a = reinterpret_cast<uintptr_t>(p);
    auto b = reinterpret_cast<uintptr_t>(base);
    return a >= b && a < b + bytes;
  }
};

struct SubsegAddrOf {
  uintptr_t operator()(const Subsegment& s) const {
    return reinterpret_cast<uintptr_t>(s.base);
  }
};
using SubsegAddrTree = AvlTree<Subsegment, &Subsegment::addr_hook, SubsegAddrOf>;

/// Process-global table mapping address ranges to subsegments, readable
/// from the SIGSEGV handler (seqlock + fixed-capacity storage: no
/// allocation, no locks on the read side).
class FaultRegistry {
 public:
  static FaultRegistry& instance();

  /// Registers/unregisters a subsegment's range. Normal-context only.
  void add(Subsegment* subseg);
  void remove(Subsegment* subseg);

  /// Async-signal-safe: the subsegment spanning `addr`, or nullptr.
  Subsegment* find(const void* addr) const noexcept;

  /// Installs the process SIGSEGV handler (idempotent).
  static void ensure_handler_installed();

 private:
  FaultRegistry() = default;

  struct Range {
    uintptr_t begin;
    uintptr_t end;
    Subsegment* subseg;
  };
  static constexpr size_t kCapacity = 1 << 14;

  mutable SeqLock seq_;
  size_t count_ = 0;
  Range ranges_[kCapacity];  // sorted by begin
};

/// Per-segment heap: allocation of typed blocks inside subsegments.
class SegmentHeap {
 public:
  explicit SegmentHeap(ClientSegment* segment) : segment_(segment) {}
  ~SegmentHeap();

  SegmentHeap(const SegmentHeap&) = delete;
  SegmentHeap& operator=(const SegmentHeap&) = delete;

  /// Allocates a block of `type` with the given serial and optional name.
  /// New subsegments are created as needed. Returns the header.
  BlockHeader* allocate(const TypeDescriptor* type, uint32_t serial,
                        const std::string* name);

  /// Frees a block's storage and removes it from the trees.
  void release(BlockHeader* block);

  /// Removes a block from all metadata trees without reclaiming its
  /// storage (deferred frees inside transactions).
  void unlink(BlockHeader* block);
  /// Reinserts a previously unlinked block (transaction abort).
  void relink(BlockHeader* block);
  /// Reclaims the storage of an unlinked block (transaction commit).
  void reclaim(BlockHeader* block);

  BlockHeader* find_by_serial(uint32_t serial) const;
  BlockHeader* find_by_name(const std::string& name) const;
  /// Block whose [data, data+size) contains `addr`; nullptr otherwise.
  BlockHeader* find_by_address(const void* addr) const;

  Subsegment* first_subsegment() const noexcept { return first_; }
  uint64_t block_count() const noexcept { return by_serial_.size(); }
  uint64_t total_prim_units() const noexcept { return total_units_; }

  /// In-serial-order iteration.
  template <typename F>
  void for_each_block(F&& fn) const {
    for (BlockHeader* b = by_serial_.first(); b != nullptr;
         b = by_serial_.next(*b)) {
      fn(b);
    }
  }

  /// Smallest-serial block (nullptr when empty) / successor, used by diff
  /// application sweeps.
  BlockHeader* first_block() const { return by_serial_.first(); }
  BlockHeader* next_block(BlockHeader* b) const { return by_serial_.next(*b); }

  /// Number of chunks on the free list (tests/diagnostics).
  size_t free_chunk_count() const noexcept;

  /// Walks every subsegment wall-to-wall validating boundary tags: chunks
  /// must tile each subsegment exactly, free chunks must be on the free
  /// list with matching footers, allocated chunks must carry live block
  /// headers. Throws Error(kInternal) on any violation. Test/debug aid.
  void check_heap() const;

 private:
  Subsegment* new_subsegment(size_t min_bytes);
  FreeChunk* add_free_chunk(uint8_t* at, uint64_t size);
  void remove_free_chunk(FreeChunk* chunk);
  static void write_footer(uint8_t* chunk_start, uint64_t size, bool is_free);

  struct SerialOf {
    uint32_t operator()(const BlockHeader& b) const { return b.serial; }
  };
  struct NameOf {
    const std::string& operator()(const BlockHeader& b) const {
      return *b.name;
    }
  };

  ClientSegment* segment_;
  Subsegment* first_ = nullptr;
  Subsegment* last_ = nullptr;
  FreeChunk* free_head_ = nullptr;
  uint64_t total_units_ = 0;
  AvlTree<BlockHeader, &BlockHeader::number_hook, SerialOf> by_serial_;
  AvlTree<BlockHeader, &BlockHeader::name_hook, NameOf> by_name_;
  std::vector<std::unique_ptr<Subsegment>> owned_;
};

}  // namespace iw::client
