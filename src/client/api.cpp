// Implementation of the C-flavoured IW_* API over a process-global client.
#include "interweave/interweave.hpp"

#include <atomic>

namespace {
std::atomic<iw::Client*> g_default_client{nullptr};
}  // namespace

void IW_init(iw::Client* client) { g_default_client.store(client); }

iw::Client& IW_client() {
  iw::Client* client = g_default_client.load();
  if (client == nullptr) {
    throw iw::Error(iw::ErrorCode::kState,
                    "IW_init has not been called with a client");
  }
  return *client;
}

IW_handle_t IW_open_segment(const std::string& url) {
  return IW_client().open_segment(url, /*create=*/true);
}

void* IW_malloc(IW_handle_t segment, const iw::TypeDescriptor* type,
                const std::string& name) {
  return IW_client().malloc_block(segment, type, name);
}

void IW_free(IW_handle_t segment, void* block) {
  IW_client().free_block(segment, block);
}

void IW_rl_acquire(IW_handle_t segment) { IW_client().read_lock(segment); }
void IW_rl_release(IW_handle_t segment) { IW_client().read_unlock(segment); }
void IW_wl_acquire(IW_handle_t segment) { IW_client().write_lock(segment); }
void IW_wl_release(IW_handle_t segment) { IW_client().write_unlock(segment); }

void IW_set_coherence(IW_handle_t segment, iw::CoherencePolicy policy) {
  IW_client().set_coherence(segment, policy);
}

IW_mip_t IW_ptr_to_mip(const void* ptr) { return IW_client().ptr_to_mip(ptr); }

void* IW_mip_to_ptr(const IW_mip_t& mip) { return IW_client().mip_to_ptr(mip); }
