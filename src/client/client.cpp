#include "client/client.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "util/logging.hpp"
#include "util/stopwatch.hpp"
#include "wire/payload.hpp"
#include "wire/translate.hpp"

namespace iw::client {

namespace {

constexpr int kPtrIdx = static_cast<int>(PrimitiveKind::kPointer);

bool is_all_digits(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](char c) { return c >= '0' && c <= '9'; });
}

std::string host_of(const std::string& url) {
  auto slash = url.find('/');
  return slash == std::string::npos ? url : url.substr(0, slash);
}

}  // namespace

/// Translation hooks bound to one client: pointer units swizzle through the
/// client's metadata trees; string units are inline char arrays.
class ClientHooks final : public InlineStringHooks {
 public:
  explicit ClientHooks(Client* client) : client_(client) {}

  std::string swizzle_out(const void* field) override {
    ++client_->stats_.swizzles_out;
    void* addr = client_->read_pointer_field(field);
    return addr == nullptr ? std::string()
                           : client_->ptr_to_mip_locked(addr);
  }

  void swizzle_out_append(const void* field, Buffer& out) override {
    ++client_->stats_.swizzles_out;
    void* addr = client_->read_pointer_field(field);
    if (addr == nullptr) {
      out.append_u32(0);  // null pointer: empty MIP
      return;
    }
    client_->ptr_to_mip_append_locked(addr, out);
  }

  void swizzle_in(std::string_view mip, void* field) override {
    ++client_->stats_.swizzles_in;
    void* addr = mip.empty() ? nullptr : client_->mip_to_ptr_locked(mip);
    client_->write_pointer_field(field, addr);
  }

 private:
  Client* client_;
};

Client::Client(ChannelFactory factory, Options options)
    : options_(std::move(options)),
      registry_(options_.platform.rules, options_.type_options),
      factory_(std::move(factory)) {
  const LayoutRules& rules = options_.platform.rules;
  const LayoutRules native = Platform::native().rules;
  native_pointers_ = rules.size[kPtrIdx] == native.size[kPtrIdx] &&
                     rules.byte_order == native.byte_order;
  // Lock caching needs the hello handshake, which only the reconnect
  // supervisor performs; the environment variable overrides the option in
  // both directions so test lanes can force either mode.
  bool cache = options_.cache_read_locks;
  if (const char* env = std::getenv("IW_LOCK_CACHE")) {
    cache = std::string_view(env) != "0";
  }
  lock_cache_enabled_ = cache && options_.auto_reconnect;
  options_.reconnect.announce_lock_caching = lock_cache_enabled_;
  // Payload compression rides the same handshake; per-connection
  // effectiveness is still the server's answer (supports_payload_compression
  // on the channel), so a mixed fleet degrades to the raw byte stream.
  bool compress = options_.compress_payloads;
  if (const char* env = std::getenv("IW_COMPRESS")) {
    compress = std::string_view(env) != "0";
  }
  options_.reconnect.announce_payload_compression =
      compress && options_.auto_reconnect;
  if (lock_cache_enabled_) {
    revoke_ack_worker_ = std::thread([this] { revoke_ack_loop(); });
  }
}

Client::~Client() {
  // Stop the ack worker first: it holds channel references and issues
  // calls; it must be gone before the channel maps below are torn down.
  // Un-acked revokes are surrendered by the disconnect that follows.
  if (revoke_ack_worker_.joinable()) {
    {
      std::lock_guard cl(lock_cache_mu_);
      revoke_ack_stop_ = true;
    }
    revoke_ack_cv_.notify_all();
    revoke_ack_worker_.join();
  }
  // Channels own receiver threads that call back into note_version() with
  // `this` captured; destroy them (joining those threads) before default
  // member destruction tears down latest_versions_/notify_mu_ underneath a
  // late notification. Each ClientSegment also holds a shared_ptr to its
  // channel, so segments_ must go first or the channels (and their
  // receiver threads) would outlive this clear via those references.
  segments_.clear();
  channels_.clear();
}

// ------------------------------------------------------------------ wiring

std::shared_ptr<ClientChannel> Client::channel_for(const std::string& url) {
  std::string host = host_of(url);
  auto it = channels_.find(host);
  if (it != channels_.end()) return it->second;
  std::shared_ptr<ClientChannel> channel;
  if (options_.auto_reconnect) {
    // The supervisor calls the factory again on every reconnect; an absent
    // host must therefore fail by throwing, not by returning nullptr.
    auto connector = [factory = factory_,
                      host]() -> std::shared_ptr<ClientChannel> {
      auto ch = factory(host);
      if (ch == nullptr) {
        throw Error(ErrorCode::kNotFound, "no server for host '" + host + "'");
      }
      return ch;
    };
    channel = std::make_shared<ReconnectingChannel>(std::move(connector),
                                                    options_.reconnect);
  } else {
    channel = factory_(host);
  }
  if (channel == nullptr) {
    throw Error(ErrorCode::kNotFound, "no server for host '" + host + "'");
  }
  // Weak capture: a shared_ptr would be a reference cycle (the handler
  // lives inside the channel), and a raw pointer could dangle if a late
  // notification raced channel teardown. lock() either pins the channel
  // for the ack or observes it already dying, in which case the disconnect
  // surrenders the cached lock without our help.
  std::weak_ptr<ClientChannel> weak = channel;
  channel->set_notify_handler([this, weak](const Frame& frame) {
    try {
      if (frame.type == MsgType::kNotifyVersion) {
        BufReader r = frame.reader();
        std::string url = r.read_lp_string();
        uint32_t version = r.read_u32();
        note_version(url, version);
      } else if (frame.type == MsgType::kRevokeRead) {
        BufReader r = frame.reader();
        std::string url = r.read_lp_string();
        uint32_t gen = r.remaining() >= 4 ? r.read_u32() : 0;
        handle_revoke(url, gen, weak);
      }
    } catch (const Error&) {
      // Malformed notification: ignore; polling still keeps us correct.
    }
  });
  channels_.emplace(std::move(host), channel);
  return channel;
}

uint32_t Client::latest_known_version(const std::string& url) const {
  std::lock_guard lock(notify_mu_);
  auto it = latest_versions_.find(url);
  return it == latest_versions_.end() ? 0 : it->second;
}

void Client::note_version(const std::string& url, uint32_t version) {
  // Overwrite rather than max(): notifications are ordered per channel, and
  // a *lower* version is meaningful — it means the server restarted from an
  // older checkpoint and we must resynchronize.
  std::lock_guard lock(notify_mu_);
  latest_versions_[url] = version;
}

void Client::handle_revoke(const std::string& url, uint32_t gen,
                           const std::weak_ptr<ClientChannel>& ch) {
  bool ack_now = false;
  {
    std::lock_guard cl(lock_cache_mu_);
    auto it = lock_cache_.find(url);
    if (it == lock_cache_.end() || it->second.active == 0) {
      // Idle (or nothing cached — a duplicate or raced revoke): release
      // immediately. An ack for a lock we no longer hold is harmless; the
      // server ignores acks whose generation doesn't match a pending
      // revocation.
      lock_cache_.erase(url);
      if (std::shared_ptr<ClientChannel> strong = ch.lock()) {
        revoke_ack_queue_.push_back({url, gen, std::move(strong)});
        ack_now = true;
      }
    } else {
      // Readers are inside the critical section: defer the release (and
      // the ack) to the last reader's unlock.
      it->second.revoked = true;
      it->second.revoke_gen = gen;
    }
  }
  if (ack_now) revoke_ack_cv_.notify_one();
}

void Client::revoke_ack_loop() {
  std::unique_lock cl(lock_cache_mu_);
  for (;;) {
    revoke_ack_cv_.wait(cl, [this] {
      return revoke_ack_stop_ || !revoke_ack_queue_.empty();
    });
    if (revoke_ack_stop_) return;
    RevokeAck ack = std::move(revoke_ack_queue_.front());
    revoke_ack_queue_.pop_front();
    cl.unlock();
    try {
      Buffer payload;
      payload.append_lp_string(ack.url);
      payload.append_u32(ack.gen);
      ack.channel->call(MsgType::kRevokeAck, std::move(payload));
      revokes_acked_.fetch_add(1, std::memory_order_relaxed);
    } catch (const Error&) {
      // Channel died: the disconnect (or reconnect's new session)
      // surrenders the cached lock server-side without our help.
    }
    // Drop the channel reference outside the lock: if it is the last one,
    // the channel (and its threads) are destroyed here, on a thread that
    // can safely join them.
    ack.channel.reset();
    cl.lock();
  }
}

void Client::forget_cached_lock(const std::string& url) {
  std::lock_guard cl(lock_cache_mu_);
  lock_cache_.erase(url);
}

// ---------------------------------------------------------------- segments

ClientSegment* Client::open_segment(const std::string& url, bool create) {
  std::lock_guard lock(mu_);
  return segment_for_url_locked(url, create);
}

ClientSegment* Client::segment_for_url_locked(const std::string& url,
                                              bool create) {
  if (url.find('#') != std::string::npos) {
    throw Error(ErrorCode::kInvalidArgument, "segment URL contains '#'");
  }
  auto it = segments_.find(url);
  if (it != segments_.end()) return it->second.get();

  auto channel = channel_for(url);
  Buffer payload;
  payload.append_lp_string(url);
  payload.append_u8(create ? 1 : 0);
  Frame resp = channel->call(MsgType::kOpenSegment, std::move(payload));
  BufReader r = resp.reader();
  uint32_t server_version = r.read_u32();
  (void)r.read_u32();  // next serial; only meaningful under a write lock

  auto seg = std::unique_ptr<ClientSegment>(
      new ClientSegment(this, url, channel));
  ClientSegment* raw = seg.get();
  raw->channel_epoch_ = channel->session_epoch();
  segments_.emplace(url, std::move(seg));
  note_version(url, server_version);

  if (options_.subscribe_notifications) {
    Buffer sub;
    sub.append_lp_string(url);
    channel->call(MsgType::kSubscribe, std::move(sub));
  }
  return raw;
}

ClientSegment* Client::reserve_remote_segment_locked(const std::string& url) {
  auto channel = channel_for(url);
  Buffer payload;
  payload.append_lp_string(url);
  Frame resp = channel->call(MsgType::kSegmentInfo, std::move(payload));
  BufReader r = resp.reader();
  uint32_t server_version = r.read_u32();

  auto seg = std::unique_ptr<ClientSegment>(
      new ClientSegment(this, url, channel));
  ClientSegment* raw = seg.get();
  raw->channel_epoch_ = channel->session_epoch();
  segments_.emplace(url, std::move(seg));
  note_version(url, server_version);

  uint32_t n_types = r.read_u32();
  for (uint32_t serial = 1; serial <= n_types; ++serial) {
    uint32_t len = r.read_u32();
    auto graph = r.read_bytes(len);
    BufReader gr(graph.data(), graph.size());
    raw->types_.push_back(TypeCodec::decode_graph(gr, registry_));
  }
  uint32_t n_blocks = r.read_u32();
  for (uint32_t i = 0; i < n_blocks; ++i) {
    uint32_t serial = r.read_u32();
    uint32_t type_serial = r.read_u32();
    std::string name = r.read_lp_string();
    const std::string* name_ptr = nullptr;
    if (!name.empty()) {
      raw->name_arena_.push_back(std::move(name));
      name_ptr = &raw->name_arena_.back();
    }
    raw->heap_.allocate(type_by_serial(raw, type_serial), serial, name_ptr);
  }
  // Data was not fetched: the copy stays at version 0, so the first lock
  // acquisition pulls everything (and reconciles the directory).
  if (options_.subscribe_notifications) {
    Buffer sub;
    sub.append_lp_string(url);
    channel->call(MsgType::kSubscribe, std::move(sub));
  }
  return raw;
}

void Client::close_segment(ClientSegment* segment) {
  std::lock_guard lock(mu_);
  if (segment->write_locked_ || segment->read_locks_ > 0) {
    throw Error(ErrorCode::kState, "close_segment with locks held");
  }
  mip_cache_seg_ = nullptr;
  mip_cache_block_ = nullptr;
  // Tell the server to forget this session's segment state (in particular
  // which type definitions it has been sent); ignore transport failures —
  // the local drop must succeed regardless.
  try {
    Buffer payload;
    payload.append_lp_string(segment->url_);
    segment->channel_->call(MsgType::kCloseSegment, std::move(payload));
  } catch (const Error&) {
  }
  // kCloseSegment dropped our per-segment server state, cached lock
  // included.
  forget_cached_lock(segment->url_);
  // The heap destructor unregisters every subsegment and unmaps its pages.
  segments_.erase(segment->url_);
}

void Client::set_coherence(ClientSegment* segment, CoherencePolicy policy) {
  std::lock_guard lock(mu_);
  segment->policy_ = policy;
}

const TypeDescriptor* Client::type_by_serial(ClientSegment* seg,
                                             uint32_t serial) const {
  if (serial == 0 || serial > seg->types_.size() ||
      seg->types_[serial - 1] == nullptr) {
    throw Error(ErrorCode::kProtocol,
                "unknown type serial " + std::to_string(serial));
  }
  return seg->types_[serial - 1];
}

uint32_t Client::ensure_type_registered_locked(ClientSegment* seg,
                                               const TypeDescriptor* type) {
  auto it = seg->type_serials_.find(type);
  if (it != seg->type_serials_.end()) return it->second;

  Buffer payload;
  payload.append_lp_string(seg->url_);
  TypeCodec::encode_graph(type, payload);
  Frame resp = seg->channel_->call(MsgType::kRegisterType, std::move(payload));
  BufReader r = resp.reader();
  uint32_t serial = r.read_u32();

  if (seg->types_.size() < serial) seg->types_.resize(serial, nullptr);
  if (seg->types_[serial - 1] == nullptr) seg->types_[serial - 1] = type;
  seg->type_serials_.emplace(type, serial);
  return serial;
}

// --------------------------------------------------------- pointer fields

void* Client::read_pointer_field(const void* field) const {
  const LayoutRules& rules = options_.platform.rules;
  const uint32_t size = rules.size[kPtrIdx];
  if (native_pointers_) {
    void* addr;
    std::memcpy(&addr, field, sizeof addr);
    return addr;
  }
  uint64_t token = 0;
  const auto* p = static_cast<const uint8_t*>(field);
  if (rules.byte_order == ByteOrder::kBig) {
    for (uint32_t i = 0; i < size; ++i) token = (token << 8) | p[i];
  } else {
    for (uint32_t i = size; i > 0; --i) token = (token << 8) | p[i - 1];
  }
  if (token == 0) return nullptr;
  if (token > ptr_tokens_.size()) {
    throw Error(ErrorCode::kInternal, "dangling pointer token");
  }
  return ptr_tokens_[token - 1];
}

void Client::write_pointer_field(void* field, void* addr) {
  const LayoutRules& rules = options_.platform.rules;
  const uint32_t size = rules.size[kPtrIdx];
  if (native_pointers_) {
    std::memcpy(field, &addr, sizeof addr);
    return;
  }
  uint64_t token = 0;
  if (addr != nullptr) {
    auto it = token_by_ptr_.find(addr);
    if (it != token_by_ptr_.end()) {
      token = it->second;
    } else {
      ptr_tokens_.push_back(addr);
      token = ptr_tokens_.size();
      token_by_ptr_.emplace(addr, static_cast<uint32_t>(token));
    }
  }
  auto* p = static_cast<uint8_t*>(field);
  uint64_t v = token;
  if (rules.byte_order == ByteOrder::kBig) {
    for (uint32_t i = size; i > 0; --i) {
      p[i - 1] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  } else {
    for (uint32_t i = 0; i < size; ++i) {
      p[i] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
}

// ------------------------------------------------------------------- MIPs

std::string Client::ptr_to_mip(const void* ptr) {
  std::lock_guard lock(mu_);
  return ptr == nullptr ? std::string() : ptr_to_mip_locked(ptr);
}

void* Client::mip_to_ptr(const std::string& mip) {
  std::lock_guard lock(mu_);
  return mip.empty() ? nullptr : mip_to_ptr_locked(mip);
}

BlockHeader* Client::resolve_ptr_locked(const void* ptr) {
  // Last-block cache (§3.3 flavour): consecutive swizzles usually target
  // the same block (arrays of pointers into one structure).
  BlockHeader* block = mip_cache_block_;
  if (block != nullptr) {
    const auto* a = static_cast<const uint8_t*>(ptr);
    if (a < block->data() || a >= block->data() + block->data_size) {
      block = nullptr;
    }
  }
  if (block == nullptr) {
    Subsegment* subseg = FaultRegistry::instance().find(ptr);
    if (subseg == nullptr || subseg->segment->client_ != this) {
      throw Error(ErrorCode::kInvalidArgument,
                  "pointer is not into a segment of this client");
    }
    block = subseg->blocks_by_addr.floor(reinterpret_cast<uintptr_t>(ptr));
    if (block != nullptr) {
      const auto* a = static_cast<const uint8_t*>(ptr);
      if (a < block->data() || a >= block->data() + block->data_size) {
        block = nullptr;
      }
    }
    if (block == nullptr) {
      throw Error(ErrorCode::kInvalidArgument,
                  "pointer into segment metadata or free space");
    }
    mip_cache_block_ = block;
  }
  return block;
}

/// Formats "<url>#<block>#<unit>" for `ptr` into `out` (length-prefixed).
void Client::ptr_to_mip_append_locked(const void* ptr, Buffer& out) {
  BlockHeader* block = resolve_ptr_locked(ptr);
  uint32_t byte_off =
      static_cast<uint32_t>(static_cast<const uint8_t*>(ptr) - block->data());
  uint64_t unit = block->type->unit_at_local_offset(byte_off).unit_index;
  const std::string& url = block->subseg->segment->url_;
  const std::string* name = block->name;

  size_t len_off = out.append_placeholder_u32();
  size_t start = out.size();
  out.append(url.data(), url.size());
  char digits[2 * 20 + 3];
  char* d = digits;
  *d++ = '#';
  if (name != nullptr) {
    out.append(digits, 1);
    out.append(name->data(), name->size());
    d = digits;
  } else {
    d = std::to_chars(d, digits + sizeof digits, block->serial).ptr;
  }
  *d++ = '#';
  d = std::to_chars(d, digits + sizeof digits, unit).ptr;
  out.append(digits, static_cast<size_t>(d - digits));
  out.patch_u32(len_off, static_cast<uint32_t>(out.size() - start));
}

std::string Client::ptr_to_mip_locked(const void* ptr) {
  Buffer tmp;
  ptr_to_mip_append_locked(ptr, tmp);
  BufReader r(tmp.span());
  return r.read_lp_string();
}

void* Client::mip_to_ptr_locked(std::string_view mip) {
  auto fail = [&] [[noreturn]] {
    throw Error(ErrorCode::kInvalidArgument,
                "malformed MIP: " + std::string(mip));
  };
  auto p2 = mip.rfind('#');
  if (p2 == std::string_view::npos || p2 == 0) fail();
  auto p1 = mip.rfind('#', p2 - 1);
  if (p1 == std::string_view::npos) fail();
  std::string_view url_view = mip.substr(0, p1);
  std::string_view block_ref = mip.substr(p1 + 1, p2 - p1 - 1);
  std::string_view unit_str = mip.substr(p2 + 1);
  if (block_ref.empty()) fail();
  uint64_t unit = 0;
  if (!unit_str.empty()) {
    auto [end, ec] =
        std::from_chars(unit_str.data(), unit_str.data() + unit_str.size(), unit);
    if (ec != std::errc() || end != unit_str.data() + unit_str.size()) fail();
  }

  ClientSegment* seg;
  if (mip_cache_seg_ != nullptr && mip_cache_seg_->url_ == url_view) {
    seg = mip_cache_seg_;  // consecutive MIPs usually share a segment
  } else {
    std::string url(url_view);
    auto it = segments_.find(url);
    if (it != segments_.end()) {
      seg = it->second.get();
    } else {
      // Reserve address space for the not-yet-cached segment (§2.1: space
      // is reserved; data arrives when the segment is locked).
      seg = reserve_remote_segment_locked(url);
    }
    mip_cache_seg_ = seg;
  }

  BlockHeader* block;
  uint32_t serial = 0;
  auto [end, ec] = std::from_chars(
      block_ref.data(), block_ref.data() + block_ref.size(), serial);
  if (ec == std::errc() && end == block_ref.data() + block_ref.size()) {
    block = seg->heap_.find_by_serial(serial);
  } else {
    block = seg->heap_.find_by_name(std::string(block_ref));
  }
  if (block == nullptr) {
    throw Error(ErrorCode::kNotFound, "MIP block '" + std::string(block_ref) +
                                          "' in " + std::string(url_view));
  }
  if (unit >= block->type->prim_units()) {
    throw Error(ErrorCode::kInvalidArgument, "MIP offset out of range");
  }
  PrimLocation loc = block->type->locate_prim(unit);
  return block->data() + loc.local_offset;
}

// ------------------------------------------------------------- allocation

void* Client::malloc_block(ClientSegment* seg, const TypeDescriptor* type,
                           const std::string& name) {
  std::lock_guard lock(mu_);
  if (!seg->write_locked_) {
    throw Error(ErrorCode::kState, "IW_malloc requires the write lock");
  }
  if (!name.empty() && is_all_digits(name)) {
    throw Error(ErrorCode::kInvalidArgument,
                "block names must not be all digits");
  }
  uint32_t type_serial = ensure_type_registered_locked(seg, type);
  (void)type_serial;  // re-fetched at collect time from type_serials_

  const std::string* name_ptr = nullptr;
  if (!name.empty()) {
    seg->name_arena_.push_back(name);
    name_ptr = &seg->name_arena_.back();
  }
  uint32_t serial = seg->next_serial_++;
  BlockHeader* block = seg->heap_.allocate(type, serial, name_ptr);
  block->created_this_cs = true;
  seg->new_blocks_.push_back(block);
  return block->data();
}

void Client::free_block(ClientSegment* seg, void* data) {
  std::lock_guard lock(mu_);
  if (!seg->write_locked_) {
    throw Error(ErrorCode::kState, "IW_free requires the write lock");
  }
  BlockHeader* block = seg->heap_.find_by_address(data);
  if (block == nullptr || block->data() != data) {
    throw Error(ErrorCode::kInvalidArgument, "IW_free of non-block address");
  }
  mip_cache_block_ = nullptr;
  if (block->created_this_cs) {
    auto& nb = seg->new_blocks_;
    nb.erase(std::remove(nb.begin(), nb.end(), block), nb.end());
    seg->heap_.release(block);
  } else if (seg->in_transaction_) {
    // Deferred: keep the storage intact so abort can resurrect the block.
    seg->heap_.unlink(block);
    seg->deferred_frees_.push_back(block);
  } else {
    seg->freed_serials_.push_back(block->serial);
    seg->heap_.release(block);
  }
}

// ------------------------------------------------------------------ locks

void Client::revalidate_if_reconnected_locked(ClientSegment* seg) {
  uint64_t epoch = seg->channel_->session_epoch();
  if (epoch == seg->channel_epoch_) return;
  seg->channel_epoch_ = epoch;
  // The server-side session died with the old connection: its subscription
  // and sent-type prefix are gone (the server tolerantly resends type
  // definitions), and any notifications sent while we were dark were lost —
  // so notification-derived freshness is void until the next round trip.
  // The cached read lock died with the session too (on_disconnect dropped
  // it), and any revoke sent while we were dark was lost with it.
  seg->needs_revalidation_ = true;
  forget_cached_lock(seg->url_);
  {
    std::lock_guard nl(notify_mu_);
    latest_versions_.erase(seg->url_);
  }
  if (options_.subscribe_notifications) {
    Buffer sub;
    sub.append_lp_string(seg->url_);
    seg->channel_->call(MsgType::kSubscribe, std::move(sub));
  }
}

void Client::recover_failed_release_locked(ClientSegment* seg) {
  end_tracking_locked(seg);
  // The blocks created this critical section may or may not exist on the
  // server, and — if the writer lock was reclaimed — their serials may
  // since have been handed to a *different* writer's blocks. Discard them
  // locally: the from-0 resync below recreates whatever the server actually
  // committed, under the committed name, without colliding on serial.
  for (BlockHeader* block : seg->new_blocks_) {
    seg->heap_.release(block);
  }
  seg->write_locked_ = false;
  seg->in_transaction_ = false;
  seg->new_blocks_.clear();
  seg->freed_serials_.clear();
  seg->deferred_frees_.clear();
  seg->version_ = 0;  // next lock pulls a full sync and sweeps dead blocks
  seg->needs_revalidation_ = true;
  mip_cache_block_ = nullptr;
  forget_cached_lock(seg->url_);
  std::lock_guard nl(notify_mu_);
  latest_versions_.erase(seg->url_);
}

bool Client::read_needs_server_locked(ClientSegment* seg) const {
  if (seg->needs_revalidation_) return true;
  if (seg->version_ == 0) return true;  // never fetched
  const CoherencePolicy& policy = seg->policy_;
  const bool have_notifications = options_.subscribe_notifications;
  switch (policy.model) {
    case CoherenceModel::kFull:
      // Conservative: notifications may lag on asynchronous transports.
      return true;
    case CoherenceModel::kDelta: {
      if (!have_notifications) return true;
      uint32_t latest = latest_known_version(seg->url_);
      if (latest < seg->version_) return true;  // server regressed: resync
      return latest - seg->version_ > policy.param;
    }
    case CoherenceModel::kTemporal: {
      int64_t age_ns = monotonic_ns() - seg->last_update_ns_;
      return age_ns > static_cast<int64_t>(policy.param) * 1'000'000;
    }
    case CoherenceModel::kDiff: {
      if (!have_notifications) return true;
      // Only the server knows the modified fraction; ask unless we know we
      // are exactly current.
      return latest_known_version(seg->url_) != seg->version_;
    }
  }
  return true;
}

void Client::read_lock(ClientSegment* seg) {
  std::lock_guard lock(mu_);
  if (seg->read_locks_ > 0 || seg->write_locked_) {
    ++seg->read_locks_;  // nested; already coherent
    if (lock_cache_enabled_) {
      // Sub-let: another local thread enters under the lock (cached or
      // live) the first one brought in — no server involvement.
      std::lock_guard cl(lock_cache_mu_);
      auto it = lock_cache_.find(seg->url_);
      if (it != lock_cache_.end() && it->second.active > 0) {
        ++it->second.active;
        sublet_grants_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return;
  }
  revalidate_if_reconnected_locked(seg);
  if (lock_cache_enabled_) {
    std::lock_guard cl(lock_cache_mu_);
    auto it = lock_cache_.find(seg->url_);
    // A cached, unrevoked lock makes the repeat acquire free. Under Full
    // coherence the cached data is provably current — a committing writer
    // would have had to revoke us first — so the coherence predicate is
    // implied; other models still consult read_needs_server_locked.
    if (it != lock_cache_.end() && it->second.cached && !it->second.revoked &&
        (seg->policy_.model == CoherenceModel::kFull ||
         !read_needs_server_locked(seg))) {
      ++it->second.active;
      lock_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      ++stats_.read_lock_local_hits;
      ++seg->read_locks_;
      return;
    }
  }
  if (!read_needs_server_locked(seg)) {
    ++stats_.read_lock_local_hits;
    ++seg->read_locks_;
    return;
  }
  if (lock_cache_enabled_) {
    lock_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  ++stats_.read_lock_server_calls;
  Buffer payload;
  payload.append_lp_string(seg->url_);
  payload.append_u32(seg->version_);
  payload.append_u8(static_cast<uint8_t>(seg->policy_.model));
  payload.append_u64(seg->policy_.param);
  Frame resp = seg->channel_->call(MsgType::kAcquireRead, std::move(payload));
  BufReader r = resp.reader();
  apply_update_locked(seg, r);
  // Trailing grant byte (present only when this session negotiated lock
  // caching): the server registered us as a cached holder — or refused,
  // implicitly surrendering any stale registration.
  if (lock_cache_enabled_ && r.remaining() >= 1) {
    const bool granted = r.read_u8() != 0;
    std::lock_guard cl(lock_cache_mu_);
    if (granted) {
      lock_cache_[seg->url_] = LockCacheEntry{true, false, 1};
    } else {
      lock_cache_.erase(seg->url_);
    }
  }
  seg->needs_revalidation_ = false;
  seg->last_update_ns_ = monotonic_ns();
  note_version(seg->url_, seg->version_);
  ++seg->read_locks_;
}

void Client::read_unlock(ClientSegment* seg) {
  std::lock_guard lock(mu_);
  if (seg->read_locks_ == 0) {
    throw Error(ErrorCode::kState, "read unlock without read lock");
  }
  --seg->read_locks_;
  if (!lock_cache_enabled_) return;
  bool ack = false;
  {
    std::lock_guard cl(lock_cache_mu_);
    auto it = lock_cache_.find(seg->url_);
    if (it == lock_cache_.end()) return;
    if (it->second.active > 0) --it->second.active;
    if (it->second.revoked && it->second.active == 0) {
      // Deferred revoke: the last local reader just left the critical
      // section, so honour it now (the worker sends the ack — the waiting
      // writer is unblocked by it, not by this thread).
      uint32_t gen = it->second.revoke_gen;
      lock_cache_.erase(it);
      revoke_ack_queue_.push_back({seg->url_, gen, seg->channel_});
      ack = true;
    }
  }
  if (ack) revoke_ack_cv_.notify_one();
}

void Client::write_lock(ClientSegment* seg) {
  std::lock_guard lock(mu_);
  if (seg->write_locked_) {
    throw Error(ErrorCode::kState, "write lock is not recursive");
  }
  if (seg->read_locks_ > 0) {
    throw Error(ErrorCode::kState, "read-to-write upgrade is not supported");
  }
  revalidate_if_reconnected_locked(seg);
  Buffer payload;
  payload.append_lp_string(seg->url_);
  payload.append_u32(seg->version_);
  Frame resp = seg->channel_->call(MsgType::kAcquireWrite, std::move(payload));
  BufReader r = resp.reader();
  seg->next_serial_ = r.read_u32();
  try {
    apply_update_locked(seg, r);
  } catch (...) {
    // We hold the server-side writer lock; release it with an empty diff so
    // other clients are not wedged by our failure. On a compressing session
    // the server reads a method byte from every release, so even the empty
    // diff carries the kRaw envelope.
    Buffer release;
    release.append_lp_string(seg->url_);
    if (seg->channel_->supports_payload_compression()) {
      release.append_u8(payload_method::kRaw);
    }
    DiffWriter(release, seg->version_, seg->version_).finish();
    try {
      seg->channel_->call(MsgType::kReleaseWrite, std::move(release));
    } catch (...) {
      // Nothing more we can do; surface the original error.
    }
    throw;
  }
  seg->needs_revalidation_ = false;
  seg->last_update_ns_ = monotonic_ns();
  seg->write_locked_ = true;
  seg->new_blocks_.clear();
  seg->freed_serials_.clear();
  // The write lock subsumes our cached read lock server-side; the cache
  // registration is gone, so the local mirror must go too.
  forget_cached_lock(seg->url_);
  begin_tracking_locked(seg);
}

void Client::write_unlock(ClientSegment* seg) {
  std::lock_guard lock(mu_);
  if (!seg->write_locked_) {
    throw Error(ErrorCode::kState, "write unlock without write lock");
  }
  try {
    collect_and_release_locked(seg);
  } catch (...) {
    // Transport died mid-release (outcome unknown) or the server reclaimed
    // our lease and rejected the release: either way the critical section
    // is over and the cached copy can no longer be trusted.
    recover_failed_release_locked(seg);
    throw;
  }
  end_tracking_locked(seg);
  seg->write_locked_ = false;
  seg->new_blocks_.clear();
  seg->freed_serials_.clear();
  seg->last_update_ns_ = monotonic_ns();
  note_version(seg->url_, seg->version_);
}

void Client::begin_transaction(ClientSegment* seg) {
  write_lock(seg);  // takes mu_ internally; transaction flag set below
  std::lock_guard lock(mu_);
  seg->in_transaction_ = true;
  seg->deferred_frees_.clear();
  // write_lock already began tracking; re-arm it if the mode chosen there
  // cannot roll back (kNoDiff keeps no pre-images).
  if (seg->active_tracking_ == TrackingMode::kNoDiff) {
    seg->active_tracking_ = TrackingMode::kSoftware;
    for (Subsegment* s = seg->heap_.first_subsegment(); s != nullptr;
         s = s->next) {
      twin_all_pages(*s);
    }
  }
}

void Client::commit_transaction(ClientSegment* seg) {
  {
    std::lock_guard lock(mu_);
    if (!seg->in_transaction_) {
      throw Error(ErrorCode::kState, "commit without transaction");
    }
    for (BlockHeader* block : seg->deferred_frees_) {
      seg->freed_serials_.push_back(block->serial);
      seg->heap_.reclaim(block);
    }
    seg->deferred_frees_.clear();
    seg->in_transaction_ = false;
  }
  write_unlock(seg);
}

void Client::abort_transaction(ClientSegment* seg) {
  std::lock_guard lock(mu_);
  if (!seg->in_transaction_) {
    throw Error(ErrorCode::kState, "abort without transaction");
  }
  // 1. Discard blocks created inside the transaction (the server never
  //    heard of them).
  mip_cache_block_ = nullptr;
  for (BlockHeader* block : seg->new_blocks_) {
    seg->heap_.release(block);
  }
  seg->new_blocks_.clear();
  // 2. Resurrect deferred frees so their data is restorable below.
  for (BlockHeader* block : seg->deferred_frees_) {
    seg->heap_.relink(block);
  }
  seg->deferred_frees_.clear();
  // 3. Restore every modified byte of pre-existing blocks from the twins.
  //    (Heap metadata — headers, free chunks — is intentionally *not*
  //    restored; the C++-side structures describing it were never rolled
  //    forward, so the live state is the consistent one.)
  for (Subsegment* s = seg->heap_.first_subsegment(); s != nullptr;
       s = s->next) {
    if (!s->any_twin.load(std::memory_order_acquire)) continue;
    for (size_t page = 0; page < s->page_count(); ++page) {
      const uint8_t* twin = s->twins[page];
      if (twin == nullptr) continue;
      uintptr_t page_lo =
          reinterpret_cast<uintptr_t>(s->base) + page * kPageSize;
      uintptr_t page_hi = page_lo + kPageSize;
      BlockHeader* block = s->blocks_by_addr.floor(page_lo);
      if (block == nullptr) block = s->blocks_by_addr.lower_bound(page_lo);
      for (; block != nullptr; block = s->blocks_by_addr.next(*block)) {
        auto data_lo = reinterpret_cast<uintptr_t>(block->data());
        if (data_lo >= page_hi) break;
        if (block->created_this_cs) continue;  // nothing existed before
        uintptr_t data_hi = data_lo + block->data_size;
        uintptr_t lo = std::max(page_lo, data_lo);
        uintptr_t hi = std::min(page_hi, data_hi);
        if (lo >= hi) continue;
        std::memcpy(reinterpret_cast<void*>(lo), twin + (lo - page_lo),
                    hi - lo);
      }
    }
  }
  // 4. Release the server-side writer lock with an empty critical section.
  Buffer release;
  release.append_lp_string(seg->url_);
  if (seg->channel_->supports_payload_compression()) {
    release.append_u8(payload_method::kRaw);
  }
  DiffWriter(release, seg->version_, seg->version_).finish();
  Frame resp;
  try {
    resp = seg->channel_->call(MsgType::kReleaseWrite, std::move(release));
  } catch (...) {
    recover_failed_release_locked(seg);
    throw;
  }
  BufReader r = resp.reader();
  seg->version_ = r.read_u32();

  end_tracking_locked(seg);
  seg->write_locked_ = false;
  seg->in_transaction_ = false;
  seg->freed_serials_.clear();
  seg->last_update_ns_ = monotonic_ns();
}

void Client::begin_tracking_locked(ClientSegment* seg) {
  TrackingMode mode = options_.tracking;
  if (mode == TrackingMode::kAuto) {
    mode = seg->no_diff_active_ ? TrackingMode::kNoDiff
                                : TrackingMode::kVmDiff;
  }
  if (seg->in_transaction_ && mode == TrackingMode::kNoDiff) {
    // Rollback needs pre-images; force twin-based tracking.
    mode = TrackingMode::kSoftware;
  }
  seg->active_tracking_ = mode;
  switch (mode) {
    case TrackingMode::kVmDiff:
      FaultRegistry::ensure_handler_installed();
      for (Subsegment* s = seg->heap_.first_subsegment(); s != nullptr;
           s = s->next) {
        // Pages fully covered by per-block no-diff blocks stay writable:
        // their content travels whole anyway, so faults and twins would be
        // pure overhead.
        bool any_skip = false;
        std::vector<bool> skip;
        if (options_.per_block_no_diff) {
          skip.assign(s->page_count(), false);
          auto base = reinterpret_cast<uintptr_t>(s->base);
          for (BlockHeader* b = s->blocks_by_addr.first(); b != nullptr;
               b = s->blocks_by_addr.next(*b)) {
            if (!b->block_no_diff) continue;
            auto start = reinterpret_cast<uintptr_t>(b);
            auto end = reinterpret_cast<uintptr_t>(b->data()) + b->data_size;
            size_t first = (start - base + kPageSize - 1) / kPageSize;
            size_t last = (end - base) / kPageSize;
            for (size_t p = first; p < last && p < skip.size(); ++p) {
              skip[p] = true;
              any_skip = true;
            }
          }
        }
        if (any_skip) {
          protect_subsegment_except(*s, skip);
        } else {
          protect_subsegment(*s);
        }
      }
      break;
    case TrackingMode::kSoftware:
      for (Subsegment* s = seg->heap_.first_subsegment(); s != nullptr;
           s = s->next) {
        twin_all_pages(*s);
      }
      break;
    default:
      break;
  }
}

void Client::end_tracking_locked(ClientSegment* seg) {
  for (Subsegment* s = seg->heap_.first_subsegment(); s != nullptr;
       s = s->next) {
    if (seg->active_tracking_ == TrackingMode::kVmDiff) {
      unprotect_subsegment(*s);
    }
    drop_all_twins(*s);
  }
}

// ---------------------------------------------------------- diff collection

void Client::collect_and_release_locked(ClientSegment* seg) {
  Stopwatch total;
  ClientHooks hooks(this);
  const LayoutRules& rules = options_.platform.rules;

  // The collect buffer is owned by the segment and reused across lock
  // cycles: clear() keeps the capacity, and the channel hands the
  // allocation back (in-proc) or sends straight from it (TCP vectored
  // send), so steady-state releases allocate nothing for the payload.
  Buffer& payload = seg->collect_buf_;
  payload.clear();
  payload.append_lp_string(seg->url_);
  // On a compressing connection the diff section sits behind a method
  // byte; the whole section is collected into this reuse buffer first and
  // compressed in place only when it pays, so the vectored-send shape (one
  // contiguous payload straight from collect_buf_) is unchanged.
  const bool enveloped = seg->channel_->supports_payload_compression();
  const size_t method_offset = payload.size();
  if (enveloped) payload.append_u8(payload_method::kRaw);
  DiffWriter writer(payload, seg->version_, seg->version_ + 1);

  for (uint32_t serial : seg->freed_serials_) {
    writer.add_free(serial);
  }

  uint64_t units_sent = 0;
  uint64_t modified_units = 0;  // excludes newly created blocks
  auto emit_whole = [&](BlockHeader* block) {
    uint8_t flags = diff_flags::kWhole;
    uint32_t type_serial = 0;
    std::string_view name;
    if (block->created_this_cs) {
      flags |= diff_flags::kNew;
      type_serial = seg->type_serials_.at(block->type);
      if (block->name != nullptr) name = *block->name;
    }
    uint64_t units = block->type->prim_units();
    writer.begin_block(block->serial, flags, type_serial, name);
    writer.begin_run(0, static_cast<uint32_t>(units));
    encode_units(*block->type, rules, block->data(), 0, units, hooks,
                 writer.buffer());
    writer.end_block();
    units_sent += units;
    if (!block->created_this_cs) modified_units += units;
  };

  const bool no_diff = seg->active_tracking_ == TrackingMode::kNoDiff;
  if (no_diff) {
    ++stats_.no_diff_releases;
    seg->heap_.for_each_block(emit_whole);
  } else {
    ++stats_.diff_releases;
    // New blocks travel whole regardless of twins.
    for (BlockHeader* block : seg->new_blocks_) {
      emit_whole(block);
    }
    // Blocks individually in no-diff mode also travel whole (§3.3); the
    // probe countdown periodically returns them to diffing.
    if (options_.per_block_no_diff) {
      std::vector<BlockHeader*> whole_blocks;
      seg->heap_.for_each_block([&](BlockHeader* block) {
        if (block->block_no_diff && !block->created_this_cs) {
          whole_blocks.push_back(block);
        }
      });
      for (BlockHeader* block : whole_blocks) {
        emit_whole(block);
        ++stats_.block_no_diff_emissions;
        if (block->nodiff_probe > 0 && --block->nodiff_probe == 0) {
          block->block_no_diff = false;
          block->nodiff_streak = 0;
        }
      }
    }

    // Phase 1: word-by-word comparison of dirty pages against their twins,
    // producing subsegment-relative modified byte ranges with run splicing.
    Stopwatch word_timer;
    std::vector<std::pair<Subsegment*, std::vector<ByteRange>>> modified;
    for (Subsegment* s = seg->heap_.first_subsegment(); s != nullptr;
         s = s->next) {
      if (!s->any_twin.load(std::memory_order_acquire)) continue;
      std::vector<ByteRange> ranges;
      for (size_t page = 0; page < s->page_count(); ++page) {
        uint8_t* twin = s->twins[page];
        if (twin == nullptr) continue;
        size_t before = ranges.size();
        diff_words(s->base + page * kPageSize, twin, kPageSize,
                   options_.splice_gap_words, ranges);
        // Rebase page-relative ranges and merge across the page boundary.
        uint32_t base_off = static_cast<uint32_t>(page * kPageSize);
        for (size_t i = before; i < ranges.size(); ++i) {
          ranges[i].begin += base_off;
          ranges[i].end += base_off;
        }
        if (before > 0 && ranges.size() > before &&
            ranges[before - 1].end == ranges[before].begin) {
          ranges[before - 1].end = ranges[before].end;
          ranges.erase(ranges.begin() + static_cast<ptrdiff_t>(before));
        }
      }
      if (!ranges.empty()) modified.emplace_back(s, std::move(ranges));
    }
    stats_.word_diff_ns += word_timer.elapsed_ns();

    // Phase 2: translate modified ranges to per-block wire-format runs.
    Stopwatch translate_timer;
    BlockHeader* open_block = nullptr;
    uint64_t open_block_last_unit = 0;
    uint64_t open_block_units = 0;
    auto update_streak = [&](BlockHeader* block, uint64_t mod_units) {
      if (!options_.per_block_no_diff) return;
      uint64_t total = block->type->prim_units();
      if (total > 0 && static_cast<double>(mod_units) >
                           options_.no_diff_threshold *
                               static_cast<double>(total)) {
        if (block->nodiff_streak < 255) ++block->nodiff_streak;
        if (block->nodiff_streak >= 2) {
          block->block_no_diff = true;
          block->nodiff_probe = static_cast<uint8_t>(
              std::min<uint32_t>(255, options_.no_diff_probe_period));
        }
      } else {
        block->nodiff_streak = 0;
      }
    };
    auto close_block = [&] {
      if (open_block != nullptr) {
        writer.end_block();
        update_streak(open_block, open_block_units);
        open_block = nullptr;
        open_block_units = 0;
      }
    };
    for (auto& [subseg, ranges] : modified) {
      for (const ByteRange& range : ranges) {
        uintptr_t lo = reinterpret_cast<uintptr_t>(subseg->base) + range.begin;
        uintptr_t hi = reinterpret_cast<uintptr_t>(subseg->base) + range.end;
        BlockHeader* block = subseg->blocks_by_addr.floor(lo);
        if (block == nullptr) {
          block = subseg->blocks_by_addr.lower_bound(lo);
        }
        for (; block != nullptr;
             block = subseg->blocks_by_addr.next(*block)) {
          auto data = reinterpret_cast<uintptr_t>(block->data());
          if (data >= hi) break;
          uintptr_t data_end = data + block->data_size;
          uintptr_t clip_lo = std::max(lo, data);
          uintptr_t clip_hi = std::min(hi, data_end);
          if (clip_lo >= clip_hi || block->created_this_cs ||
              block->block_no_diff) {
            continue;
          }

          uint64_t ub = block->type
                            ->unit_at_local_offset(
                                static_cast<uint32_t>(clip_lo - data))
                            .unit_index;
          uint64_t ue = block->type
                            ->unit_at_local_offset(
                                static_cast<uint32_t>(clip_hi - 1 - data))
                            .unit_index +
                        1;
          if (open_block == block && ub < open_block_last_unit) {
            ub = open_block_last_unit;  // padding rounding overlap
          }
          if (ub >= ue) continue;
          if (open_block != block) {
            close_block();
            writer.begin_block(block->serial, 0);
            open_block = block;
          }
          writer.begin_run(static_cast<uint32_t>(ub),
                           static_cast<uint32_t>(ue - ub));
          encode_units(*block->type, rules, block->data(), ub, ue, hooks,
                       writer.buffer());
          open_block_last_unit = ue;
          open_block_units += ue - ub;
          units_sent += ue - ub;
          modified_units += ue - ub;
        }
      }
      close_block();
    }
    close_block();
    stats_.translate_ns += translate_timer.elapsed_ns();
  }

  writer.finish();
  if (enveloped && compress_section_in_place(payload, method_offset)) {
    ++stats_.diffs_compressed;
  }
  stats_.units_sent += units_sent;
  ++stats_.diffs_collected;
  stats_.collect_ns += total.elapsed_ns();

  Frame resp = seg->channel_->call(MsgType::kReleaseWrite, payload);
  BufReader r = resp.reader();
  seg->version_ = r.read_u32();

  // The critical section is over; its blocks are ordinary blocks now.
  for (BlockHeader* block : seg->new_blocks_) {
    block->created_this_cs = false;
  }

  // No-diff adaptation (kAuto): switch modes based on the *modified*
  // fraction of this critical section (freshly created blocks always travel
  // whole and say nothing about write density); probe again periodically.
  if (options_.tracking == TrackingMode::kAuto) {
    uint64_t total_units = seg->heap_.total_prim_units();
    if (!no_diff) {
      if (total_units > 0 &&
          static_cast<double>(modified_units) >
              options_.no_diff_threshold * static_cast<double>(total_units)) {
        seg->no_diff_active_ = true;
        seg->no_diff_probe_countdown_ = options_.no_diff_probe_period;
      }
    } else if (seg->no_diff_probe_countdown_ > 0 &&
               --seg->no_diff_probe_countdown_ == 0) {
      seg->no_diff_active_ = false;  // probe diffing next critical section
    }
  }
}

// --------------------------------------------------------- diff application

bool Client::apply_update_locked(ClientSegment* seg, BufReader& in) {
  uint8_t status = in.read_u8();
  if (status == 0) return false;

  uint32_t n_types = in.read_u32();
  for (uint32_t i = 0; i < n_types; ++i) {
    uint32_t serial = in.read_u32();
    uint32_t len = in.read_u32();
    auto graph = in.read_bytes(len);
    if (seg->types_.size() < serial) seg->types_.resize(serial, nullptr);
    if (seg->types_[serial - 1] == nullptr) {
      BufReader gr(graph.data(), graph.size());
      seg->types_[serial - 1] = TypeCodec::decode_graph(gr, registry_);
    }
  }
  if (seg->channel_->supports_payload_compression()) {
    // Negotiated sessions wrap the diff section in the method-byte envelope
    // (kLz is explicitly sized, so any trailing bytes — the kAcquireRead
    // grant flag — still parse from `in` afterwards).
    std::vector<uint8_t> scratch;
    if (read_compressed_section(in, scratch)) {
      BufReader section(scratch.data(), scratch.size());
      apply_diff_locked(seg, section);
    } else {
      apply_diff_locked(seg, in);
    }
  } else {
    apply_diff_locked(seg, in);
  }
  ++stats_.updates_applied;
  return true;
}

void Client::apply_diff_locked(ClientSegment* seg, BufReader& in) {
  Stopwatch timer;
  DiffReader reader(in);
  if (reader.from_version() != 0 && reader.from_version() != seg->version_) {
    throw Error(ErrorCode::kProtocol, "diff base does not match cached copy");
  }
  const bool full_sync = reader.from_version() == 0;
  if (full_sync && seg->version_ != 0) ++stats_.full_resyncs;

  std::vector<DiffEntry> entries;
  entries.reserve(reader.entry_count());
  DiffEntry entry;
  while (reader.next(&entry)) {
    entries.push_back(entry);
  }

  // Pass A: materialize new blocks first so intra-diff pointers (swizzled
  // during pass B) can resolve forward references.
  for (DiffEntry& e : entries) {
    if (!(e.flags & diff_flags::kNew)) continue;
    BlockHeader* existing = seg->heap_.find_by_serial(e.serial);
    if (existing != nullptr) continue;  // reserved earlier via SegmentInfo
    const std::string* name_ptr = nullptr;
    if (!e.name.empty()) {
      seg->name_arena_.push_back(e.name);
      name_ptr = &seg->name_arena_.back();
    }
    seg->heap_.allocate(type_by_serial(seg, e.type_serial), e.serial,
                        name_ptr);
  }

  // Pass B: frees and data, with last-block ("next block in memory")
  // prediction to skip the serial-tree search (§3.3).
  ClientHooks hooks(this);
  const LayoutRules& rules = options_.platform.rules;
  std::unordered_set<uint32_t> mentioned;
  BlockHeader* last_applied = nullptr;
  for (DiffEntry& e : entries) {
    if (e.flags & diff_flags::kFree) {
      BlockHeader* block = seg->heap_.find_by_serial(e.serial);
      if (block != nullptr) {
        if (block == last_applied) last_applied = nullptr;
        mip_cache_block_ = nullptr;
        seg->heap_.release(block);
      }
      continue;
    }
    mentioned.insert(e.serial);
    BlockHeader* block = nullptr;
    if (options_.last_block_prediction && last_applied != nullptr) {
      BlockHeader* candidate = next_block_in_memory(last_applied);
      if (candidate != nullptr && candidate->serial == e.serial) {
        block = candidate;
        ++stats_.prediction_hits;
      }
    }
    if (block == nullptr) {
      ++stats_.prediction_misses;
      block = seg->heap_.find_by_serial(e.serial);
    }
    if (block == nullptr) {
      throw Error(ErrorCode::kProtocol,
                  "diff references unknown block " + std::to_string(e.serial));
    }
    const uint64_t units = block->type->prim_units();
    while (!e.runs.at_end()) {
      DiffRun run = DiffReader::read_run(e.runs);
      if (run.start_unit + static_cast<uint64_t>(run.unit_count) > units) {
        throw Error(ErrorCode::kProtocol, "diff run exceeds block");
      }
      decode_units(*block->type, rules, block->data(), run.start_unit,
                   run.start_unit + run.unit_count, hooks, e.runs);
    }
    last_applied = block;
  }

  if (full_sync) {
    // The from-0 diff enumerates every live block; reserved blocks that
    // were freed on the server in the meantime are swept here.
    std::vector<BlockHeader*> dead;
    seg->heap_.for_each_block([&](BlockHeader* b) {
      if (!mentioned.count(b->serial)) dead.push_back(b);
    });
    if (!dead.empty()) mip_cache_block_ = nullptr;
    for (BlockHeader* b : dead) seg->heap_.release(b);
  }

  seg->version_ = reader.to_version();
  stats_.apply_ns += timer.elapsed_ns();
}

BlockHeader* Client::next_block_in_memory(BlockHeader* block) const {
  Subsegment* subseg = block->subseg;
  BlockHeader* next = subseg->blocks_by_addr.next(*block);
  while (next == nullptr) {
    subseg = subseg->next;
    if (subseg == nullptr) return nullptr;
    next = subseg->blocks_by_addr.first();
  }
  return next;
}

uint64_t Client::bytes_sent() const {
  std::lock_guard lock(mu_);
  uint64_t total = 0;
  for (const auto& [host, channel] : channels_) total += channel->bytes_sent();
  return total;
}

uint64_t Client::bytes_received() const {
  std::lock_guard lock(mu_);
  uint64_t total = 0;
  for (const auto& [host, channel] : channels_) {
    total += channel->bytes_received();
  }
  return total;
}

}  // namespace iw::client
