// Modification tracking: twins, page protection, and word-granular diffing.
//
// When a client acquires a write lock (in VM-diff mode) the segment's pages
// are write-protected; the first write to each page traps into the SIGSEGV
// handler, which snapshots the page into a *twin* and re-enables writes.
// At release, diff collection compares each dirty page with its twin word
// by word, producing byte ranges of modified data, with *run splicing*:
// gaps of <= N unmodified words between modified words are treated as
// modified so the diff stays one run (paper §3.3; N = 2 by default).
//
// A software mode snapshots every page eagerly at lock acquire instead of
// using VM protection — same diffs, no signals (useful under debuggers and
// in tests, and the natural port target for platforms without mprotect).
//
// Concurrency note: faults from multiple threads on distinct pages are
// safe (per-slot CAS); concurrent first-writes to the *same* page race
// exactly as the underlying application data race does.
#pragma once

#include <cstdint>
#include <vector>

#include "client/heap.hpp"

namespace iw::client {

/// Half-open modified byte range, relative to a subsegment base.
struct ByteRange {
  uint32_t begin;
  uint32_t end;
};

/// Word-by-word (32-bit) comparison of `bytes` bytes at cur vs twin.
/// Appends modified ranges (relative to cur) to `out`, splicing gaps of at
/// most `splice_gap_words` unmodified words. `bytes` must be a multiple of 4.
void diff_words(const uint8_t* cur, const uint8_t* twin, size_t bytes,
                uint32_t splice_gap_words, std::vector<ByteRange>& out);

/// Installs the process-wide SIGSEGV handler (called once via
/// FaultRegistry::ensure_handler_installed).
void install_sigsegv_handler();

/// Write-protects all pages of a subsegment (VM-diff mode, at wl_acquire).
void protect_subsegment(Subsegment& subseg);

/// Write-protects only the pages where `skip[i]` is false — pages fully
/// covered by blocks in per-block no-diff mode stay writable, eliminating
/// their mprotect/fault/twin costs (paper §3.3).
void protect_subsegment_except(Subsegment& subseg,
                               const std::vector<bool>& skip);

/// Restores read-write access to all pages.
void unprotect_subsegment(Subsegment& subseg);

/// Eagerly snapshots every page (software mode). Pages that already have
/// twins keep them.
void twin_all_pages(Subsegment& subseg);

/// Releases all twins and clears the pagemap.
void drop_all_twins(Subsegment& subseg);

/// Process-wide count of write faults taken by the handler (stats).
uint64_t fault_count() noexcept;

}  // namespace iw::client
