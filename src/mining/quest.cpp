#include "mining/quest.hpp"

namespace iw::mining {

std::vector<uint32_t> CustomerSequence::flattened() const {
  std::vector<uint32_t> out;
  for (const auto& txn : transactions) {
    out.insert(out.end(), txn.begin(), txn.end());
  }
  return out;
}

QuestGenerator::QuestGenerator(QuestConfig config) : config_(config) {
  // Seed the pattern pool. Pattern popularity is skewed (low-indexed
  // patterns are drawn more often), as in Quest.
  SplitMix64 rng(config_.seed);
  patterns_.reserve(config_.patterns);
  for (uint32_t p = 0; p < config_.patterns; ++p) {
    uint64_t len = rng.poissonish(config_.avg_pattern_length);
    if (len < 2) len = 2;
    std::vector<uint32_t> pattern;
    pattern.reserve(len);
    for (uint64_t i = 0; i < len; ++i) {
      pattern.push_back(static_cast<uint32_t>(rng.below(config_.items)));
    }
    patterns_.push_back(std::move(pattern));
  }
}

CustomerSequence QuestGenerator::customer(uint32_t index) const {
  // Per-customer deterministic stream: mix the index into the seed.
  SplitMix64 rng(config_.seed ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
  CustomerSequence seq;
  uint64_t n_txns = rng.poissonish(config_.avg_transactions_per_customer);
  seq.transactions.reserve(n_txns);
  for (uint64_t t = 0; t < n_txns; ++t) {
    std::vector<uint32_t> txn;
    uint64_t target = rng.poissonish(config_.avg_items_per_transaction);
    // Weave in seeded patterns (skewed toward low pattern indices), then
    // pad with noise items.
    while (txn.size() < target) {
      if (rng.below(100) < 70 && !patterns_.empty()) {
        // Squared-uniform index skews popularity toward early patterns.
        uint64_t r = rng.below(patterns_.size());
        uint64_t idx = r * r / patterns_.size();
        const auto& pattern = patterns_[idx];
        txn.insert(txn.end(), pattern.begin(), pattern.end());
      } else {
        txn.push_back(static_cast<uint32_t>(rng.below(config_.items)));
      }
    }
    if (txn.size() > target) txn.resize(target);
    seq.transactions.push_back(std::move(txn));
  }
  return seq;
}

uint64_t QuestGenerator::approx_bytes() const {
  double items_total = config_.customers *
                       config_.avg_transactions_per_customer *
                       config_.avg_items_per_transaction;
  return static_cast<uint64_t>(items_total * 4.0);
}

}  // namespace iw::mining
