#include "mining/lattice.hpp"

#include <algorithm>

namespace iw::mining {

namespace {

/// Platform-aware 32-bit read/write at a raw field address.
int32_t load_i32(const LayoutRules& rules, const uint8_t* p) {
  uint32_t v = 0;
  if (rules.byte_order == ByteOrder::kBig) {
    for (int i = 0; i < 4; ++i) v = (v << 8) | p[i];
  } else {
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  }
  return static_cast<int32_t>(v);
}

// Primitive-unit indices inside a SeqNode (machine-independent).
constexpr uint64_t kUnitSupport = 0;
constexpr uint64_t kUnitLength = 1;
constexpr uint64_t kUnitItems = 2;                      // .. +kMaxSeqLen
constexpr uint64_t kUnitChildCount = 2 + kMaxSeqLen;
constexpr uint64_t kUnitChildren = kUnitChildCount + 2;  // skip pad

// Root block: units 0..3 header, 4.. pointer slots.
constexpr uint64_t kRootUnitItemCount = 0;
constexpr uint64_t kRootUnitNodeCount = 1;
constexpr uint64_t kRootUnitCustomers = 2;
constexpr uint64_t kRootUnitSlots = 4;

}  // namespace

LatticeTypes make_lattice_types(TypeRegistry& registry, uint32_t items) {
  const TypeDescriptor* i32 = registry.primitive(PrimitiveKind::kInt32);
  StructBuilder nb = registry.struct_builder("seq_node");
  nb.field("support", i32);
  nb.field("length", i32);
  nb.field("items", registry.array_of(i32, kMaxSeqLen));
  nb.field("child_count", i32);
  nb.field("pad", i32);
  // children[kMaxChildren]: individual self-pointer fields (the registry's
  // isomorphic transform only merges primitives, so the layout matches a
  // plain pointer array on every platform).
  for (uint32_t i = 0; i < kMaxChildren; ++i) {
    nb.self_pointer_field("c" + std::to_string(i));
  }
  const TypeDescriptor* node = nb.finish();

  const TypeDescriptor* root = registry.struct_builder("lattice_root")
      .field("item_count", i32)
      .field("node_count", i32)
      .field("customers_mined", i32)
      .field("pad", i32)
      .field("roots", registry.array_of(registry.pointer_to(node), items))
      .finish();
  return {node, root};
}

// ---------------------------------------------------------------- writer

LatticeWriter::LatticeWriter(client::Client& client, const std::string& url,
                             uint32_t items, Options options)
    : client_(client), options_(options), items_(items) {
  check_internal(
      client.options().platform.rules.size[static_cast<int>(
          PrimitiveKind::kPointer)] == sizeof(void*),
      "LatticeWriter requires the native platform");
  types_ = make_lattice_types(client_.types(), items_);
  segment_ = client_.open_segment(url);
  client_.write_lock(segment_);
  auto* existing = segment_->heap().find_by_name("root");
  if (existing == nullptr) {
    root_block_ =
        static_cast<uint8_t*>(client_.malloc_block(segment_, types_.root, "root"));
    auto* header = reinterpret_cast<uint32_t*>(root_block_);
    header[0] = items_;
  } else {
    root_block_ = const_cast<uint8_t*>(existing->data());
    customers_mined_ = reinterpret_cast<uint32_t*>(root_block_)[2];
    // Rebuild the key map by walking the existing lattice.
    std::vector<SeqNode*> stack;
    for (uint32_t i = 0; i < items_; ++i) {
      if (root_slots()[i] != nullptr) stack.push_back(root_slots()[i]);
    }
    while (!stack.empty()) {
      SeqNode* node = stack.back();
      stack.pop_back();
      Key key;
      key.length = node->length;
      std::copy(node->items, node->items + node->length, key.items.begin());
      nodes_.emplace(key, node);
      ++node_count_;
      for (int32_t c = 0; c < node->child_count; ++c) {
        stack.push_back(node->children[c]);
      }
    }
  }
  client_.write_unlock(segment_);
}

SeqNode** LatticeWriter::root_slots() {
  return reinterpret_cast<SeqNode**>(root_block_ + kRootHeaderBytes);
}

void LatticeWriter::flush_key(const Key& key, int64_t count) {
  auto it = nodes_.find(key);
  if (it != nodes_.end()) {
    it->second->support += static_cast<int32_t>(count);
    return;
  }
  int64_t& pending = below_threshold_[key];
  if (pending < 0) return;  // permanently dropped (full parent)
  pending += count;
  if (pending < options_.min_support) return;

  // Crossed the threshold: materialize a node and link it to its prefix.
  SeqNode* parent = nullptr;
  if (key.length > 1) {
    Key prefix = key;
    prefix.length = key.length - 1;
    prefix.items[key.length - 1] = 0;
    auto pit = nodes_.find(prefix);
    // A prefix is at least as frequent as its extension and batches flush
    // shortest-first, so a missing prefix means it was itself dropped
    // (fan-out overflow); its extensions are dropped with it.
    if (pit == nodes_.end()) {
      pending = -1;
      return;
    }
    parent = pit->second;
    if (parent->child_count >= static_cast<int32_t>(kMaxChildren)) {
      pending = -1;  // no room; drop this extension permanently
      return;
    }
  }
  auto* node =
      static_cast<SeqNode*>(client_.malloc_block(segment_, types_.node));
  node->support = static_cast<int32_t>(pending);
  node->length = key.length;
  std::copy(key.items.begin(), key.items.begin() + key.length, node->items);
  node->child_count = 0;
  if (parent != nullptr) {
    parent->children[parent->child_count++] = node;
  } else {
    root_slots()[key.items[0]] = node;
  }
  nodes_.emplace(key, node);
  below_threshold_.erase(key);
  ++node_count_;
}

void LatticeWriter::mine_customers(const QuestGenerator& db, uint32_t from,
                                   uint32_t to) {
  // Phase 1 (no lock): count contiguous item n-grams across the batch.
  std::unordered_map<Key, int64_t, KeyHash> counts;
  for (uint32_t c = from; c < to; ++c) {
    std::vector<uint32_t> stream = db.customer(c).flattened();
    for (size_t i = 0; i < stream.size(); ++i) {
      Key key;
      for (uint32_t len = 1;
           len <= options_.max_length && i + len <= stream.size(); ++len) {
        key.items[len - 1] = static_cast<int32_t>(stream[i + len - 1]);
        key.length = static_cast<int32_t>(len);
        ++counts[key];
      }
    }
  }

  // Phase 2 (write lock): merge into the shared lattice, shortest keys
  // first so prefixes materialize before their extensions.
  std::vector<const std::pair<const Key, int64_t>*> batch;
  batch.reserve(counts.size());
  for (const auto& kv : counts) batch.push_back(&kv);
  std::sort(batch.begin(), batch.end(), [](const auto* a, const auto* b) {
    return a->first.length < b->first.length;
  });

  client_.write_lock(segment_);
  for (const auto* kv : batch) {
    flush_key(kv->first, kv->second);
  }
  customers_mined_ += to - from;
  auto* header = reinterpret_cast<uint32_t*>(root_block_);
  header[1] = node_count_;
  header[2] = customers_mined_;
  client_.write_unlock(segment_);
}

// ---------------------------------------------------------------- reader

LatticeReader::LatticeReader(client::Client& client, const std::string& url)
    : client_(client) {
  segment_ = client_.open_segment(url, /*create=*/false);
}

const uint8_t* LatticeReader::root_block() {
  const auto* block = segment_->heap().find_by_name("root");
  if (block == nullptr) {
    throw Error(ErrorCode::kState, "lattice root not present; refresh first");
  }
  return block->data();
}

std::optional<int32_t> LatticeReader::support_of(
    const std::vector<int32_t>& sequence) {
  if (sequence.empty() || sequence.size() > kMaxSeqLen) return std::nullopt;
  const auto* root_blk = segment_->heap().find_by_name("root");
  if (root_blk == nullptr) return std::nullopt;
  const LayoutRules& rules = client_.options().platform.rules;
  const TypeDescriptor* root_type = root_blk->type;

  // roots[item] slot.
  uint64_t slot_unit = kRootUnitSlots + static_cast<uint64_t>(sequence[0]);
  const uint8_t* slot =
      root_blk->data() + root_type->locate_prim(slot_unit).local_offset;
  const void* node = client_.read_pointer_field(slot);
  const client::BlockHeader* nb =
      node ? segment_->heap().find_by_address(node) : nullptr;

  for (size_t depth = 1; nb != nullptr && depth < sequence.size(); ++depth) {
    // Scan the node's children for one extending with sequence[depth].
    const TypeDescriptor* nt = nb->type;
    int32_t nchildren = load_i32(
        rules, nb->data() + nt->locate_prim(kUnitChildCount).local_offset);
    const client::BlockHeader* next = nullptr;
    for (int32_t c = 0; c < nchildren; ++c) {
      const uint8_t* child_slot =
          nb->data() + nt->locate_prim(kUnitChildren + c).local_offset;
      const void* child = client_.read_pointer_field(child_slot);
      if (child == nullptr) continue;
      const auto* cb = segment_->heap().find_by_address(child);
      if (cb == nullptr) continue;
      int32_t last = load_i32(
          rules, cb->data() +
                     cb->type->locate_prim(kUnitItems + depth).local_offset);
      if (last == sequence[depth]) {
        next = cb;
        break;
      }
    }
    nb = next;
  }
  if (nb == nullptr) return std::nullopt;
  return load_i32(rules,
                  nb->data() + nb->type->locate_prim(kUnitSupport).local_offset);
}

std::vector<LatticeReader::Ranked> LatticeReader::top_sequences(
    uint32_t k, int32_t length) {
  const LayoutRules& rules = client_.options().platform.rules;
  std::vector<Ranked> all;
  const auto* root_blk = segment_->heap().find_by_name("root");
  if (root_blk == nullptr) return all;
  const TypeDescriptor* root_type = root_blk->type;
  uint32_t items = static_cast<uint32_t>(load_i32(
      rules, root_blk->data() +
                 root_type->locate_prim(kRootUnitItemCount).local_offset));

  std::vector<const client::BlockHeader*> stack;
  for (uint32_t i = 0; i < items; ++i) {
    const uint8_t* slot =
        root_blk->data() +
        root_type->locate_prim(kRootUnitSlots + i).local_offset;
    const void* node = client_.read_pointer_field(slot);
    if (node == nullptr) continue;
    const auto* nb = segment_->heap().find_by_address(node);
    if (nb != nullptr) stack.push_back(nb);
  }
  while (!stack.empty()) {
    const auto* nb = stack.back();
    stack.pop_back();
    const TypeDescriptor* nt = nb->type;
    int32_t node_len =
        load_i32(rules, nb->data() + nt->locate_prim(kUnitLength).local_offset);
    if (node_len == length) {
      Ranked r;
      r.support = load_i32(
          rules, nb->data() + nt->locate_prim(kUnitSupport).local_offset);
      for (int32_t i = 0; i < node_len; ++i) {
        r.items.push_back(load_i32(
            rules, nb->data() + nt->locate_prim(kUnitItems + i).local_offset));
      }
      all.push_back(std::move(r));
      continue;  // children are longer
    }
    int32_t nchildren = load_i32(
        rules, nb->data() + nt->locate_prim(kUnitChildCount).local_offset);
    for (int32_t c = 0; c < nchildren; ++c) {
      const uint8_t* slot =
          nb->data() + nt->locate_prim(kUnitChildren + c).local_offset;
      const void* child = client_.read_pointer_field(slot);
      if (child == nullptr) continue;
      const auto* cb = segment_->heap().find_by_address(child);
      if (cb != nullptr) stack.push_back(cb);
    }
  }
  std::sort(all.begin(), all.end(),
            [](const Ranked& a, const Ranked& b) { return a.support > b.support; });
  if (all.size() > k) all.resize(k);
  return all;
}

uint32_t LatticeReader::node_count() {
  const LayoutRules& rules = client_.options().platform.rules;
  const uint8_t* root = root_block();
  const auto* blk = segment_->heap().find_by_name("root");
  return static_cast<uint32_t>(load_i32(
      rules,
      root + blk->type->locate_prim(kRootUnitNodeCount).local_offset));
}

uint32_t LatticeReader::customers_mined() {
  const LayoutRules& rules = client_.options().platform.rules;
  const uint8_t* root = root_block();
  const auto* blk = segment_->heap().find_by_name("root");
  return static_cast<uint32_t>(load_i32(
      rules, root + blk->type->locate_prim(kRootUnitCustomers).local_offset));
}

}  // namespace iw::mining
