// Synthetic customer-transaction database in the style of the IBM Quest
// generator [Srikant & Agrawal], which produced the paper's 20 MB sample
// (100,000 customers, 1000 items, 1.25 transactions per customer on
// average, 5000 seeded sequence patterns of average length 4).
//
// Generation is deterministic *per customer index*, so the database never
// needs to be materialized: the incremental miner streams customers in
// order, and repeated runs see identical data.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rand.hpp"

namespace iw::mining {

struct QuestConfig {
  uint32_t customers = 100'000;
  uint32_t items = 1000;
  double avg_transactions_per_customer = 1.25;
  uint32_t patterns = 5000;
  double avg_pattern_length = 4.0;
  /// Items per transaction, sized so the full database is ~20 MB at the
  /// paper's other parameters (5M items * 4 B).
  double avg_items_per_transaction = 40.0;
  uint64_t seed = 0x5EED;
};

/// One customer's purchase history: an ordered list of transactions, each
/// an ordered list of item ids.
struct CustomerSequence {
  std::vector<std::vector<uint32_t>> transactions;

  /// All items in purchase order (transaction boundaries flattened).
  std::vector<uint32_t> flattened() const;
};

class QuestGenerator {
 public:
  explicit QuestGenerator(QuestConfig config);

  const QuestConfig& config() const noexcept { return config_; }

  /// The seeded frequent patterns woven into customers' histories.
  const std::vector<std::vector<uint32_t>>& patterns() const noexcept {
    return patterns_;
  }

  /// Deterministically generates customer `index`'s history.
  CustomerSequence customer(uint32_t index) const;

  /// Approximate size of the full database in bytes (4 B per item id).
  uint64_t approx_bytes() const;

 private:
  QuestConfig config_;
  std::vector<std::vector<uint32_t>> patterns_;
};

}  // namespace iw::mining
