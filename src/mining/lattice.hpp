// Shared sequence-mining summary structure (paper §4.4).
//
// The database server performs incremental sequence mining over the Quest
// database and maintains a *lattice of item sequences* in an InterWeave
// segment: each node represents a potentially meaningful item sequence and
// holds pointers to the sequences it is a prefix of. Roughly a third of the
// structure is pointers, matching the paper's description. Mining clients
// map the same segment (under a relaxed coherence model of their choosing)
// and run queries against their cached copy.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/client.hpp"
#include "mining/quest.hpp"

namespace iw::mining {

inline constexpr uint32_t kMaxSeqLen = 8;
inline constexpr uint32_t kMaxChildren = 14;

/// Native-layout node of the shared lattice. The same shape is registered
/// through the type system so non-native clients can map it too.
struct SeqNode {
  int32_t support;
  int32_t length;
  int32_t items[kMaxSeqLen];
  int32_t child_count;
  int32_t pad;  // keeps the pointer array 8-aligned on the native layout
  SeqNode* children[kMaxChildren];
};
static_assert(sizeof(SeqNode) == 48 + kMaxChildren * sizeof(void*));

/// Root directory block layout: { u32 item_count, node_count,
/// customers_mined, pad; SeqNode* roots[item_count] }. Offsets shared by
/// writer and reader.
inline constexpr uint32_t kRootHeaderBytes = 16;

/// The InterWeave types for the lattice, built in a client's registry.
struct LatticeTypes {
  const TypeDescriptor* node;
  const TypeDescriptor* root;  // for a given item count
};
LatticeTypes make_lattice_types(TypeRegistry& registry, uint32_t items);

/// Writer-side miner: owns the lattice segment contents. Must run on the
/// native platform (it manipulates SeqNode directly). All methods take the
/// write lock internally.
class LatticeWriter {
 public:
  struct Options {
    uint32_t min_support = 25;  ///< count before a sequence gets a node
    uint32_t max_length = 4;    ///< longest tracked sequence
  };

  LatticeWriter(client::Client& client, const std::string& url,
                uint32_t items, Options options);

  /// Mines customers [from, to) of `db` and merges the results into the
  /// shared lattice in one write critical section.
  void mine_customers(const QuestGenerator& db, uint32_t from, uint32_t to);

  uint32_t node_count() const noexcept { return node_count_; }
  client::ClientSegment* segment() const noexcept { return segment_; }

 private:
  struct Key {
    std::array<int32_t, kMaxSeqLen> items{};
    int32_t length = 0;
    bool operator==(const Key& other) const {
      return length == other.length &&
             std::equal(items.begin(), items.begin() + length,
                        other.items.begin());
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = static_cast<size_t>(k.length);
      for (int32_t i = 0; i < k.length; ++i) {
        h = h * 1315423911u + static_cast<size_t>(k.items[i]);
      }
      return h;
    }
  };

  SeqNode** root_slots();
  /// Creates the node for `key` if its accumulated count crossed the
  /// support threshold; updates supports either way. Write lock held.
  void flush_key(const Key& key, int64_t count);

  client::Client& client_;
  client::ClientSegment* segment_;
  LatticeTypes types_;
  uint8_t* root_block_ = nullptr;
  Options options_;
  uint32_t items_;
  uint32_t node_count_ = 0;
  uint32_t customers_mined_ = 0;
  std::unordered_map<Key, SeqNode*, KeyHash> nodes_;
  std::unordered_map<Key, int64_t, KeyHash> below_threshold_;
};

/// Reader-side interface over a cached copy of the lattice. Works on any
/// platform via the client's pointer-field accessors (on the native
/// platform those degenerate to plain loads).
class LatticeReader {
 public:
  LatticeReader(client::Client& client, const std::string& url);

  void refresh() {
    client_.read_lock(segment_);
    client_.read_unlock(segment_);
  }

  /// Support of an exact item sequence; nullopt when absent.
  std::optional<int32_t> support_of(const std::vector<int32_t>& sequence);

  /// The `k` highest-support sequences of exactly `length` items.
  struct Ranked {
    std::vector<int32_t> items;
    int32_t support;
  };
  std::vector<Ranked> top_sequences(uint32_t k, int32_t length);

  uint32_t node_count();
  uint32_t customers_mined();
  client::ClientSegment* segment() const noexcept { return segment_; }

 private:
  const uint8_t* root_block();

  client::Client& client_;
  client::ClientSegment* segment_;
};

}  // namespace iw::mining
