#include "rpcbase/xdr.hpp"

#include <cstring>

namespace iw::rpc {

namespace {
uint32_t pad4(uint32_t n) { return (n + 3u) & ~3u; }
}  // namespace

// The per-primitive routines are deliberately out-of-line (see header).

bool Xdr::x_char(char* v) {
  // XDR promotes chars to 4-byte ints on the wire.
  int32_t wide = *v;
  if (!x_int(&wide)) return false;
  *v = static_cast<char>(wide);
  return true;
}

bool Xdr::x_short(int16_t* v) {
  int32_t wide = *v;
  if (!x_int(&wide)) return false;
  *v = static_cast<int16_t>(wide);
  return true;
}

bool Xdr::x_int(int32_t* v) {
  if (op_ == XdrOp::kEncode) {
    out_->append_i32(*v);
    return true;
  }
  if (in_->remaining() < 4) return false;
  *v = in_->read_i32();
  return true;
}

bool Xdr::x_hyper(int64_t* v) {
  if (op_ == XdrOp::kEncode) {
    out_->append_i64(*v);
    return true;
  }
  if (in_->remaining() < 8) return false;
  *v = in_->read_i64();
  return true;
}

bool Xdr::x_float(float* v) {
  if (op_ == XdrOp::kEncode) {
    out_->append_f32(*v);
    return true;
  }
  if (in_->remaining() < 4) return false;
  *v = in_->read_f32();
  return true;
}

bool Xdr::x_double(double* v) {
  if (op_ == XdrOp::kEncode) {
    out_->append_f64(*v);
    return true;
  }
  if (in_->remaining() < 8) return false;
  *v = in_->read_f64();
  return true;
}

bool Xdr::x_string(char* buf, uint32_t capacity) {
  if (op_ == XdrOp::kEncode) {
    uint32_t len = static_cast<uint32_t>(strnlen(buf, capacity));
    out_->append_u32(len);
    out_->append(buf, len);
    for (uint32_t i = len; i < pad4(len); ++i) out_->append_u8(0);
    return true;
  }
  if (in_->remaining() < 4) return false;
  uint32_t len = in_->read_u32();
  if (in_->remaining() < pad4(len) || len >= capacity) return false;
  auto bytes = in_->read_bytes(len);
  std::memcpy(buf, bytes.data(), len);
  buf[len] = '\0';
  in_->skip(pad4(len) - len);
  return true;
}

bool Xdr::x_opaque(void* data, uint32_t n) {
  if (op_ == XdrOp::kEncode) {
    out_->append(data, n);
    for (uint32_t i = n; i < pad4(n); ++i) out_->append_u8(0);
    return true;
  }
  if (in_->remaining() < pad4(n)) return false;
  auto bytes = in_->read_bytes(n);
  std::memcpy(data, bytes.data(), n);
  in_->skip(pad4(n) - n);
  return true;
}

bool xdr_vector(Xdr* xdr, void* base, uint32_t count, uint32_t elem_size,
                xdrproc_t proc) {
  auto* p = static_cast<uint8_t*>(base);
  for (uint32_t i = 0; i < count; ++i, p += elem_size) {
    if (!proc(xdr, p)) return false;
  }
  return true;
}

bool xdr_pointer(Xdr* xdr, void** ptr, uint32_t obj_size, xdrproc_t proc) {
  int32_t present = (*ptr != nullptr) ? 1 : 0;
  if (!xdr->x_int(&present)) return false;
  if (!present) {
    if (xdr->op() == XdrOp::kDecode) *ptr = nullptr;
    return true;
  }
  if (xdr->op() == XdrOp::kDecode && *ptr == nullptr) {
    *ptr = ::operator new(obj_size);
    std::memset(*ptr, 0, obj_size);
  }
  return proc(xdr, *ptr);
}

}  // namespace iw::rpc
