// Minimal RPC layer over the shared transports.
//
// Procedures are registered by number on an RpcServer (a ServerCore, so it
// runs over both the in-process and TCP transports); clients invoke them
// with XDR-marshaled arguments and results via RpcClient. This is the
// "straightforward use of RPC" the paper contrasts with InterWeave: every
// call re-marshals its full arguments, deep-copying through pointers, with
// no caching and no diffs.
#pragma once

#include <functional>
#include <mutex>
#include <unordered_map>

#include "net/transport.hpp"
#include "rpcbase/xdr.hpp"

namespace iw::rpc {

/// Server-side procedure: decode args from `in`, encode results to `out`.
using Procedure = std::function<void(BufReader& in, Buffer& out)>;

class RpcServer : public ServerCore {
 public:
  /// Registers `proc` under `proc_id`; replaces any previous registration.
  void register_procedure(uint32_t proc_id, Procedure proc);

  // ServerCore:
  void on_connect(SessionId, Notifier) override {}
  void on_disconnect(SessionId) override {}
  Frame handle(SessionId session, const Frame& request) override;

 private:
  std::mutex mu_;
  std::unordered_map<uint32_t, Procedure> procedures_;
};

class RpcClient {
 public:
  explicit RpcClient(std::shared_ptr<ClientChannel> channel)
      : channel_(std::move(channel)) {}

  /// Calls `proc_id` with `args` as the marshaled argument payload and
  /// returns a reader over the result payload (backed by the returned
  /// frame, kept alive inside Result).
  struct Result {
    Frame frame;
    BufReader reader() const { return frame.reader(); }
  };
  Result call(uint32_t proc_id, Buffer args);

  uint64_t bytes_sent() const { return channel_->bytes_sent(); }
  uint64_t bytes_received() const { return channel_->bytes_received(); }

 private:
  std::shared_ptr<ClientChannel> channel_;
};

}  // namespace iw::rpc
