#include "rpcbase/rpc.hpp"

namespace iw::rpc {

namespace {
// RPC frames reuse the generic frame format: the first 4 payload bytes are
// the procedure number, the rest is the XDR-marshaled argument body.
constexpr MsgType kRpcCall = MsgType::kPing;      // transport-level reuse
constexpr MsgType kRpcReply = MsgType::kPingResp;
}  // namespace

void RpcServer::register_procedure(uint32_t proc_id, Procedure proc) {
  std::lock_guard lock(mu_);
  procedures_[proc_id] = std::move(proc);
}

Frame RpcServer::handle(SessionId, const Frame& request) {
  Frame response;
  try {
    BufReader in = request.reader();
    uint32_t proc_id = in.read_u32();
    Procedure proc;
    {
      std::lock_guard lock(mu_);
      auto it = procedures_.find(proc_id);
      if (it == procedures_.end()) {
        throw Error(ErrorCode::kNotFound,
                    "procedure " + std::to_string(proc_id));
      }
      proc = it->second;
    }
    Buffer out;
    proc(in, out);
    response.type = kRpcReply;
    response.payload = out.take();
  } catch (const Error& e) {
    response = make_error_frame(e);
  } catch (const std::exception& e) {
    response = make_error_frame(Error(ErrorCode::kInternal, e.what()));
  }
  response.request_id = request.request_id;
  return response;
}

RpcClient::Result RpcClient::call(uint32_t proc_id, Buffer args) {
  Buffer payload;
  payload.append_u32(proc_id);
  payload.append(args.data(), args.size());
  Result result;
  result.frame = channel_->call(kRpcCall, std::move(payload));
  return result;
}

}  // namespace iw::rpc
