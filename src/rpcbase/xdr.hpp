// XDR-style marshaling — the paper's RPC baseline (Sun RPC / rpcgen).
//
// This reproduces the *cost structure* of rpcgen-generated code, which is
// what Figure 4 compares InterWeave against:
//
//   * one out-of-line call per primitive item, dispatched through xdrproc_t
//     function pointers (rpcgen does not inline the per-element routines —
//     the paper calls this out for doubles specifically);
//   * big-endian 4-byte alignment on the wire (XDR pads everything to 4);
//   * deep-copy pointer semantics: xdr_pointer marshals a presence flag
//     followed by the pointed-to data, recursively — no identity, no diffs;
//   * strings as length + bytes + padding, with strlen on encode.
//
// A single Xdr object works in both directions, selected by XdrOp, exactly
// like XDR_ENCODE/XDR_DECODE streams.
#pragma once

#include <cstdint>

#include "util/buffer.hpp"

namespace iw::rpc {

enum class XdrOp { kEncode, kDecode };

/// Bidirectional XDR stream over a Buffer (encode) or BufReader (decode).
///
/// The primitive operations are virtual on purpose: Sun XDR dispatches
/// every item through the stream's x_ops function-pointer table, and that
/// per-element indirection is a real part of the baseline's cost model.
class Xdr {
 public:
  /// Encoding stream appending to `out`.
  explicit Xdr(Buffer& out) : op_(XdrOp::kEncode), out_(&out) {}
  /// Decoding stream consuming `in`.
  explicit Xdr(BufReader& in) : op_(XdrOp::kDecode), in_(&in) {}
  virtual ~Xdr() = default;

  XdrOp op() const noexcept { return op_; }

  // Primitive items. Each returns false on decode underrun (mirroring the
  // xdr_* convention) rather than throwing, as rpcgen callers check bools.
  bool x_char(char* v);
  bool x_short(int16_t* v);
  virtual bool x_int(int32_t* v);
  virtual bool x_hyper(int64_t* v);
  virtual bool x_float(float* v);
  virtual bool x_double(double* v);

  /// NUL-terminated string in a caller-owned buffer of `capacity` bytes.
  /// Wire form: u32 length + bytes + pad to 4 (XDR string).
  virtual bool x_string(char* buf, uint32_t capacity);

  /// Raw bytes, padded to 4 on the wire (XDR opaque).
  virtual bool x_opaque(void* data, uint32_t n);

  Buffer* buffer() noexcept { return out_; }
  BufReader* reader() noexcept { return in_; }

 private:
  XdrOp op_;
  Buffer* out_ = nullptr;
  BufReader* in_ = nullptr;
};

/// rpcgen-style element marshaler.
using xdrproc_t = bool (*)(Xdr*, void*);

/// Fixed-length array of `count` elements of `elem_size` bytes, each
/// marshaled via `proc` (XDR xdr_vector).
bool xdr_vector(Xdr* xdr, void* base, uint32_t count, uint32_t elem_size,
                xdrproc_t proc);

/// Deep-copy pointer (XDR xdr_pointer): presence flag, then the pointed-to
/// object. On decode, absent objects become nullptr and present objects are
/// heap-allocated via `alloc`/default new[]. The caller owns the result.
bool xdr_pointer(Xdr* xdr, void** ptr, uint32_t obj_size, xdrproc_t proc);

}  // namespace iw::rpc
