#include "idl/parser.hpp"

#include <optional>

namespace iw::idl {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw Error(ErrorCode::kInvalidArgument,
              "IDL line " + std::to_string(line) + ": " + message);
}

/// Maps a primitive keyword to its kind; nullopt for non-keywords.
std::optional<PrimitiveKind> primitive_keyword(const std::string& word) {
  if (word == "char") return PrimitiveKind::kChar;
  if (word == "short" || word == "int16") return PrimitiveKind::kInt16;
  if (word == "int" || word == "int32") return PrimitiveKind::kInt32;
  if (word == "long" || word == "hyper" || word == "int64")
    return PrimitiveKind::kInt64;
  if (word == "float") return PrimitiveKind::kFloat32;
  if (word == "double") return PrimitiveKind::kFloat64;
  return std::nullopt;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  IdlFile parse_file() {
    IdlFile file;
    while (peek().kind != TokenKind::kEof) {
      file.decls.push_back(parse_declaration());
    }
    return file;
  }

 private:
  const Token& peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  Token expect(TokenKind kind, const char* what) {
    if (peek().kind != kind) fail(peek().line, std::string("expected ") + what);
    return take();
  }
  std::string expect_ident(const char* what) {
    return expect(TokenKind::kIdent, what).text;
  }

  Declaration parse_declaration() {
    Declaration decl;
    const Token& t = peek();
    if (t.kind != TokenKind::kIdent) fail(t.line, "expected declaration");
    if (t.text == "struct" && peek(2).kind == TokenKind::kLBrace) {
      decl.kind = Declaration::Kind::kStruct;
      decl.is_struct = true;
      decl.struct_def = parse_struct();
      return decl;
    }
    if (t.text == "enum") {
      decl.kind = Declaration::Kind::kEnum;
      decl.enum_def = parse_enum();
      return decl;
    }
    if (t.text == "typedef") {
      decl.kind = Declaration::Kind::kTypedef;
      decl.typedef_def = parse_typedef();
      return decl;
    }
    fail(t.line, "expected 'struct', 'enum' or 'typedef' declaration");
  }

  EnumDef parse_enum() {
    expect(TokenKind::kIdent, "'enum'");
    EnumDef def;
    def.name = expect_ident("enum name");
    expect(TokenKind::kLBrace, "'{'");
    int64_t next_value = 0;
    for (;;) {
      std::string name = expect_ident("enumerator");
      if (peek().kind == TokenKind::kEquals) {
        take();
        Token v = expect(TokenKind::kInteger, "enumerator value");
        next_value = static_cast<int64_t>(v.value);
      }
      def.values.emplace_back(std::move(name), next_value);
      ++next_value;
      if (peek().kind == TokenKind::kComma) {
        take();
        if (peek().kind == TokenKind::kRBrace) break;  // trailing comma
        continue;
      }
      break;
    }
    expect(TokenKind::kRBrace, "'}'");
    expect(TokenKind::kSemi, "';'");
    if (def.values.empty()) fail(peek().line, "enum has no values");
    return def;
  }

  StructDef parse_struct() {
    expect(TokenKind::kIdent, "'struct'");
    StructDef def;
    def.name = expect_ident("struct name");
    expect(TokenKind::kLBrace, "'{'");
    while (peek().kind != TokenKind::kRBrace) {
      def.fields.push_back(parse_field());
    }
    if (def.fields.empty()) fail(peek().line, "struct has no fields");
    expect(TokenKind::kRBrace, "'}'");
    expect(TokenKind::kSemi, "';'");
    return def;
  }

  FieldDef parse_field() {
    auto [type, name] = parse_typed_declarator();
    expect(TokenKind::kSemi, "';'");
    return {std::move(type), std::move(name)};
  }

  TypedefDef parse_typedef() {
    expect(TokenKind::kIdent, "'typedef'");
    auto [type, name] = parse_typed_declarator();
    expect(TokenKind::kSemi, "';'");
    return {std::move(name), std::move(type)};
  }

  std::pair<TypeExpr, std::string> parse_typed_declarator() {
    TypeExpr base = parse_type_spec();
    bool is_pointer = false;
    if (peek().kind == TokenKind::kStar) {
      take();
      is_pointer = true;
    }
    std::string name = expect_ident("declarator name");
    // Collect array dimensions; outermost dimension is written first.
    std::vector<uint64_t> dims;
    while (peek().kind == TokenKind::kLBracket) {
      take();
      Token n = expect(TokenKind::kInteger, "array length");
      if (n.value == 0) fail(n.line, "array length must be positive");
      dims.push_back(n.value);
      expect(TokenKind::kRBracket, "']'");
    }
    TypeExpr type = std::move(base);
    if (is_pointer) {
      TypeExpr ptr;
      ptr.kind = TypeExpr::Kind::kPointer;
      ptr.inner = std::make_unique<TypeExpr>(std::move(type));
      type = std::move(ptr);
    }
    for (auto it = dims.rbegin(); it != dims.rend(); ++it) {
      TypeExpr arr;
      arr.kind = TypeExpr::Kind::kArray;
      arr.array_count = *it;
      arr.inner = std::make_unique<TypeExpr>(std::move(type));
      type = std::move(arr);
    }
    return {std::move(type), std::move(name)};
  }

  TypeExpr parse_type_spec() {
    Token t = expect(TokenKind::kIdent, "type name");
    TypeExpr e;
    if (t.text == "unsigned") {
      // "unsigned" alone means unsigned int; otherwise it qualifies the
      // following integer keyword. Representation is shared with the
      // signed kind (two's complement bytes on the wire).
      e.kind = TypeExpr::Kind::kPrimitive;
      e.prim = PrimitiveKind::kInt32;
      if (peek().kind == TokenKind::kIdent) {
        if (auto prim = primitive_keyword(peek().text)) {
          if (*prim == PrimitiveKind::kFloat32 ||
              *prim == PrimitiveKind::kFloat64) {
            fail(peek().line, "'unsigned' cannot qualify a float type");
          }
          e.prim = *prim;
          take();
        }
      }
      return e;
    }
    if (auto prim = primitive_keyword(t.text)) {
      e.kind = TypeExpr::Kind::kPrimitive;
      e.prim = *prim;
      return e;
    }
    if (t.text == "string") {
      expect(TokenKind::kLAngle, "'<'");
      Token n = expect(TokenKind::kInteger, "string capacity");
      if (n.value == 0 || n.value > (1u << 30)) {
        fail(n.line, "string capacity out of range");
      }
      expect(TokenKind::kRAngle, "'>'");
      e.kind = TypeExpr::Kind::kString;
      e.string_capacity = static_cast<uint32_t>(n.value);
      return e;
    }
    if (t.text == "struct") {
      // "struct foo" reference form.
      e.kind = TypeExpr::Kind::kNamed;
      e.name = expect_ident("struct name");
      return e;
    }
    e.kind = TypeExpr::Kind::kNamed;
    e.name = t.text;
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// Resolves an AST type to a descriptor. `current` names the struct being
/// built (self references allowed only behind a pointer); `builder` is that
/// struct's builder, used to register self-pointer fields.
const TypeDescriptor* resolve(
    const TypeExpr& e,
    const std::map<std::string, const TypeDescriptor*>& named,
    const std::string& current, TypeRegistry& registry, bool behind_pointer) {
  switch (e.kind) {
    case TypeExpr::Kind::kPrimitive:
      return registry.primitive(e.prim);
    case TypeExpr::Kind::kString:
      return registry.string_type(e.string_capacity);
    case TypeExpr::Kind::kNamed: {
      auto it = named.find(e.name);
      if (it == named.end()) {
        if (e.name == current) {
          if (behind_pointer) return nullptr;  // signals self reference
          throw Error(ErrorCode::kInvalidArgument,
                      "struct '" + current + "' contains itself by value");
        }
        throw Error(ErrorCode::kInvalidArgument,
                    "undeclared type '" + e.name + "'");
      }
      return it->second;
    }
    case TypeExpr::Kind::kPointer: {
      const TypeDescriptor* pointee = resolve(*e.inner, named, current,
                                              registry, /*behind_pointer=*/true);
      if (pointee == nullptr) return nullptr;  // self pointer; handled above
      return registry.pointer_to(pointee);
    }
    case TypeExpr::Kind::kArray: {
      const TypeDescriptor* elem =
          resolve(*e.inner, named, current, registry, behind_pointer);
      if (elem == nullptr) {
        throw Error(ErrorCode::kInvalidArgument,
                    "array of self pointers is not supported in field '" +
                        current + "' (wrap the pointer in a struct)");
      }
      return registry.array_of(elem, e.array_count);
    }
  }
  throw Error(ErrorCode::kInternal, "bad TypeExpr kind");
}

}  // namespace

IdlFile parse(std::string_view source) {
  return Parser(tokenize(source)).parse_file();
}

std::map<std::string, const TypeDescriptor*> build_descriptors(
    const IdlFile& file, TypeRegistry& registry) {
  std::map<std::string, const TypeDescriptor*> named;
  for (const auto& decl : file.decls) {
    if (decl.kind == Declaration::Kind::kEnum) {
      if (named.count(decl.enum_def.name)) {
        throw Error(ErrorCode::kAlreadyExists,
                    "type '" + decl.enum_def.name + "'");
      }
      // Enums are 32-bit integers on the wire (XDR convention).
      named.emplace(decl.enum_def.name,
                    registry.primitive(PrimitiveKind::kInt32));
      continue;
    }
    if (decl.is_struct) {
      const StructDef& sd = decl.struct_def;
      if (named.count(sd.name)) {
        throw Error(ErrorCode::kAlreadyExists, "type '" + sd.name + "'");
      }
      StructBuilder builder = registry.struct_builder(sd.name);
      for (const FieldDef& f : sd.fields) {
        // A direct self pointer resolves to nullptr; nested self pointers
        // (e.g. pointer-to-array-of-self) are rejected in resolve().
        const TypeDescriptor* ft =
            resolve(f.type, named, sd.name, registry, false);
        if (ft == nullptr) {
          builder.self_pointer_field(f.name);
        } else {
          builder.field(f.name, ft);
        }
      }
      named.emplace(sd.name, builder.finish());
    } else {
      const TypedefDef& td = decl.typedef_def;
      if (named.count(td.name)) {
        throw Error(ErrorCode::kAlreadyExists, "type '" + td.name + "'");
      }
      const TypeDescriptor* t =
          resolve(td.type, named, td.name, registry, false);
      check_internal(t != nullptr, "typedef resolved to self pointer");
      named.emplace(td.name, t);
    }
  }
  return named;
}

}  // namespace iw::idl
