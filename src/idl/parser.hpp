// Parser and semantic analysis for the InterWeave IDL.
//
// Grammar (EBNF):
//   file        := declaration*
//   declaration := struct_decl | typedef_decl | enum_decl
//   struct_decl := "struct" IDENT "{" field+ "}" ";"
//   field       := type_spec "*"? IDENT ("[" INT "]")* ";"
//   typedef_decl:= "typedef" type_spec "*"? IDENT ("[" INT "]")* ";"
//   enum_decl   := "enum" IDENT "{" IDENT ("=" INT)? ("," ...)* "}" ";"
//   type_spec   := "unsigned"? ("char" | "short" | "int" | "long" | "hyper")
//               | "float" | "double" | "string" "<" INT ">"
//               | "struct"? IDENT
//
// Enums are 32-bit integers on the wire (as in XDR); unsigned variants
// share their signed kind's representation (two's complement bytes).
//
// Semantics follow C: a named type must be declared before use, except that
// a *pointer* field may reference the struct currently being declared
// (linked structures). Arrays bind tighter than the leading "*", i.e.
// `node *next[4];` is an array of four pointers.
//
// The parser produces a small AST shared by two consumers:
//   * build_descriptors() instantiates TypeDescriptors in a TypeRegistry
//     (one registry per platform — same IDL, different layouts), and
//   * generate_cpp_header() (codegen.hpp) emits a C++ mapping of the types.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "idl/lexer.hpp"
#include "types/registry.hpp"

namespace iw::idl {

/// AST type expression.
struct TypeExpr {
  enum class Kind { kPrimitive, kString, kNamed, kPointer, kArray };
  Kind kind = Kind::kPrimitive;
  PrimitiveKind prim = PrimitiveKind::kChar;  // kPrimitive
  uint32_t string_capacity = 0;               // kString
  std::string name;                           // kNamed
  std::unique_ptr<TypeExpr> inner;            // kPointer / kArray
  uint64_t array_count = 0;                   // kArray
};

struct FieldDef {
  TypeExpr type;
  std::string name;
};

struct StructDef {
  std::string name;
  std::vector<FieldDef> fields;
};

struct TypedefDef {
  std::string name;
  TypeExpr type;
};

struct EnumDef {
  std::string name;
  std::vector<std::pair<std::string, int64_t>> values;
};

struct Declaration {
  enum class Kind { kStruct, kTypedef, kEnum };
  Kind kind = Kind::kTypedef;
  // Back-compat convenience for the common struct/typedef dichotomy.
  bool is_struct = false;
  StructDef struct_def;
  TypedefDef typedef_def;
  EnumDef enum_def;
};

struct IdlFile {
  std::vector<Declaration> decls;
};

/// Parses IDL source into an AST. Throws Error(kInvalidArgument) with a line
/// number on syntax errors and on semantic errors detectable syntactically.
IdlFile parse(std::string_view source);

/// Instantiates all declared types in `registry` and returns them by name.
/// Throws Error(kInvalidArgument) for undeclared type references, by-value
/// self reference, or duplicate declarations.
std::map<std::string, const TypeDescriptor*> build_descriptors(
    const IdlFile& file, TypeRegistry& registry);

}  // namespace iw::idl
