#include "idl/lexer.hpp"

#include <cctype>

namespace iw::idl {

namespace {
[[noreturn]] void fail(int line, const std::string& message) {
  throw Error(ErrorCode::kInvalidArgument,
              "IDL line " + std::to_string(line) + ": " + message);
}
}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  auto peek = [&](size_t ahead = 0) -> char {
    return i + ahead < source.size() ? source[i + ahead] : '\0';
  };
  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < source.size() && !(source[i] == '*' && peek(1) == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i >= source.size()) fail(line, "unterminated block comment");
      i += 2;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        ++i;
      }
      tokens.push_back(
          {TokenKind::kIdent, std::string(source.substr(start, i - start)), 0,
           line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      uint64_t value = 0;
      size_t start = i;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        uint64_t next = value * 10 + static_cast<uint64_t>(source[i] - '0');
        if (next < value) fail(line, "integer literal overflows");
        value = next;
        ++i;
      }
      (void)start;
      tokens.push_back({TokenKind::kInteger, {}, value, line});
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case '[': kind = TokenKind::kLBracket; break;
      case ']': kind = TokenKind::kRBracket; break;
      case '<': kind = TokenKind::kLAngle; break;
      case '>': kind = TokenKind::kRAngle; break;
      case '*': kind = TokenKind::kStar; break;
      case ';': kind = TokenKind::kSemi; break;
      case ',': kind = TokenKind::kComma; break;
      case '=': kind = TokenKind::kEquals; break;
      default:
        fail(line, std::string("unexpected character '") + c + "'");
    }
    tokens.push_back({kind, {}, 0, line});
    ++i;
  }
  tokens.push_back({TokenKind::kEof, {}, 0, line});
  return tokens;
}

}  // namespace iw::idl
