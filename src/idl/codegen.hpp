// C++ code generation from IDL — the language half of the IDL compiler.
//
// generate_cpp_header() emits a self-contained C++ header declaring every
// IDL struct/typedef with the native in-memory layout, static_asserts that
// pin sizeof/offsetof to the layout the InterWeave runtime computes for the
// native platform, and the original IDL source embedded as a constant so
// programs can register the same types at runtime with one call.
#pragma once

#include <string>

#include "idl/parser.hpp"

namespace iw::idl {

struct CodegenOptions {
  std::string cpp_namespace = "iwgen";  ///< namespace for generated types
  bool emit_layout_asserts = true;      ///< static_assert the native layout
};

/// Renders a C++ header for `file`. `source` is the original IDL text,
/// embedded verbatim for runtime registration.
std::string generate_cpp_header(const IdlFile& file, std::string_view source,
                                const CodegenOptions& options = {});

}  // namespace iw::idl
