// Lexer for the InterWeave interface description language.
//
// The IDL is a small C-flavoured declaration language (rpcgen-like): struct
// and typedef declarations over primitive types, fixed-capacity strings,
// pointers and fixed-length arrays. See parser.hpp for the grammar.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace iw::idl {

enum class TokenKind : uint8_t {
  kIdent,     ///< identifier or keyword (keywords resolved by the parser)
  kInteger,   ///< decimal integer literal
  kLBrace,    ///< {
  kRBrace,    ///< }
  kLBracket,  ///< [
  kRBracket,  ///< ]
  kLAngle,    ///< <
  kRAngle,    ///< >
  kStar,      ///< *
  kSemi,      ///< ;
  kComma,     ///< ,
  kEquals,    ///< =
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;   ///< identifier spelling
  uint64_t value = 0; ///< integer value
  int line = 0;       ///< 1-based source line, for diagnostics
};

/// Tokenizes `source`, stripping whitespace, // line comments and /* block
/// comments. Throws Error(kInvalidArgument) with a line number on bad input.
std::vector<Token> tokenize(std::string_view source);

}  // namespace iw::idl
