// Plan-compiled translation: per-(TypeDescriptor, LayoutRules) run programs.
//
// A TranslationPlan is compiled once per descriptor instantiation and cached
// on the descriptor itself: a flattened, prefix-summed program of primitive
// runs (and loops over aggregate array elements) covering the whole value.
// Translation binary-searches to the op containing the first requested unit
// and executes straight-line copy/swap loops from there — no recursive
// descent over the descriptor tree per lock release.
//
// The compiler also proves (or refutes) the paper's §3.3 isomorphism: when
// the local layout is byte-identical to the canonical wire format (matching
// endianness and sizes, no padding, no strings or pointers), encoding or
// decoding any unit range degenerates to a single memcpy.
//
// Plans are immutable after compilation and live exactly as long as their
// descriptor; descriptors are themselves immutable, so there are no
// invalidation rules — the cache key is descriptor identity within its
// registry's LayoutRules.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "types/platform.hpp"

namespace iw {

class TypeDescriptor;
class TranslationPlan;

/// Snapshot of one registry's translation counters.
struct TranslationStats {
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t bytes_encoded = 0;
  uint64_t bytes_decoded = 0;
  uint64_t isomorphic_fast_path_blocks = 0;
};

/// Relaxed-atomic counters shared by every descriptor of one TypeRegistry
/// (same pattern as the server's AtomicStats: mutation paths never lock).
struct TranslationCounters {
  std::atomic<uint64_t> plan_cache_hits{0};
  std::atomic<uint64_t> plan_cache_misses{0};
  std::atomic<uint64_t> bytes_encoded{0};
  std::atomic<uint64_t> bytes_decoded{0};
  std::atomic<uint64_t> isomorphic_fast_path_blocks{0};

  TranslationStats snapshot() const noexcept {
    TranslationStats s;
    s.plan_cache_hits = plan_cache_hits.load(std::memory_order_relaxed);
    s.plan_cache_misses = plan_cache_misses.load(std::memory_order_relaxed);
    s.bytes_encoded = bytes_encoded.load(std::memory_order_relaxed);
    s.bytes_decoded = bytes_decoded.load(std::memory_order_relaxed);
    s.isomorphic_fast_path_blocks =
        isomorphic_fast_path_blocks.load(std::memory_order_relaxed);
    return s;
  }
  void reset() noexcept {
    plan_cache_hits.store(0, std::memory_order_relaxed);
    plan_cache_misses.store(0, std::memory_order_relaxed);
    bytes_encoded.store(0, std::memory_order_relaxed);
    bytes_decoded.store(0, std::memory_order_relaxed);
    isomorphic_fast_path_blocks.store(0, std::memory_order_relaxed);
  }
};

/// One instruction of a compiled plan. Ops are sorted by first_unit and
/// partition [0, prim_units) exactly.
struct PlanOp {
  enum class Kind : uint8_t {
    kRun,   ///< unit_count homogeneous primitive units at a fixed stride
    kLoop,  ///< elem_count aggregate elements, each executed via elem_plan
  };

  Kind op = Kind::kRun;
  PrimitiveKind prim = PrimitiveKind::kChar;  ///< valid for kRun
  uint64_t first_unit = 0;   ///< prefix-summed unit index of the op's start
  uint64_t unit_count = 0;   ///< total units the op covers
  uint32_t local_offset = 0; ///< byte offset of the first unit / element
  uint32_t local_stride = 0; ///< kRun: bytes between units; kLoop: element stride
  uint32_t string_capacity = 0;  ///< valid when prim == kString
  /// Fixed-wire bytes preceding this op within the value. Only meaningful
  /// while every preceding unit is fixed-size (always true when the whole
  /// plan is fixed, i.e. !variable()).
  uint64_t wire_offset = 0;

  // --- kLoop only ---
  const TranslationPlan* elem_plan = nullptr;
  uint64_t elem_count = 0;
  uint64_t units_per_elem = 0;
  uint64_t wire_per_elem = 0;  ///< valid when the element plan is fixed
};

class TranslationPlan {
 public:
  /// The cached plan for `type` (compiled against `rules` on first use).
  /// Lock-free after the first call; bumps the owning registry's
  /// plan_cache_hits/misses counters. `rules` must be the LayoutRules the
  /// descriptor was instantiated against (its registry's rules).
  static const TranslationPlan& of(const TypeDescriptor& type,
                                   const LayoutRules& rules);

  const std::vector<PlanOp>& ops() const noexcept { return ops_; }
  uint64_t prim_units() const noexcept { return prim_units_; }
  uint64_t fixed_wire_size() const noexcept { return fixed_wire_size_; }
  /// True when the wire encoding contains strings or pointers (variable
  /// length; fixed-wire offsets are not usable).
  bool variable() const noexcept { return variable_; }
  /// True when local bytes [offset_of(b), offset_of(e)) are the wire
  /// encoding of units [b, e) verbatim — the §3.3 single-memcpy case.
  bool isomorphic() const noexcept { return isomorphic_; }
  /// True when local numeric byte order differs from the (big-endian) wire.
  bool swap() const noexcept { return swap_; }

  /// Index of the op whose unit range contains `unit` (< prim_units).
  size_t op_index(uint64_t unit) const noexcept;

  /// Wire byte offset of `unit` within the value's encoding; `unit` ==
  /// prim_units() yields the total size. Requires !variable(). For an
  /// isomorphic plan this is also the unit's local byte offset.
  uint64_t fixed_wire_offset_of(uint64_t unit) const noexcept;

  TranslationPlan(const TranslationPlan&) = delete;
  TranslationPlan& operator=(const TranslationPlan&) = delete;
  ~TranslationPlan();

 private:
  TranslationPlan(const TypeDescriptor& type, const LayoutRules& rules);

  void compile(const TypeDescriptor& type, uint64_t unit_base,
               uint32_t local_base, const LayoutRules& rules);
  void append_run(PrimitiveKind kind, uint64_t first_unit, uint64_t count,
                  uint32_t local_offset, uint32_t stride, uint32_t capacity);
  void finalize();

  std::vector<PlanOp> ops_;
  uint64_t prim_units_ = 0;
  uint64_t fixed_wire_size_ = 0;
  bool variable_ = false;
  bool isomorphic_ = false;
  bool swap_ = false;
};

}  // namespace iw
