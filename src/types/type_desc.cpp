#include "types/type_desc.hpp"

#include <algorithm>

#include "types/translation_plan.hpp"

namespace iw {

TypeDescriptor::~TypeDescriptor() {
  delete plan_.load(std::memory_order_acquire);
}

size_t TypeDescriptor::field_index_for_unit(uint64_t unit) const noexcept {
  // Last field whose prim_offset <= unit.
  auto it = std::upper_bound(
      fields_.begin(), fields_.end(), unit,
      [](uint64_t u, const Field& f) { return u < f.prim_offset; });
  return static_cast<size_t>(it - fields_.begin()) - 1;
}

size_t TypeDescriptor::field_index_for_local(uint32_t offset) const noexcept {
  auto it = std::upper_bound(
      fields_.begin(), fields_.end(), offset,
      [](uint32_t o, const Field& f) { return o < f.local_offset; });
  size_t i = static_cast<size_t>(it - fields_.begin());
  if (i == 0) return 0;
  --i;
  // `offset` may land in padding after field i; treat as the next field.
  const Field& f = fields_[i];
  if (offset >= f.local_offset + f.type->local_size() &&
      i + 1 < fields_.size()) {
    return i + 1;
  }
  return i;
}

PrimLocation TypeDescriptor::locate_prim(uint64_t unit) const {
  if (unit >= prim_units_) {
    throw Error(ErrorCode::kInvalidArgument,
                "primitive offset out of range for type");
  }
  const TypeDescriptor* t = this;
  uint32_t local = 0;
  for (;;) {
    switch (t->kind_) {
      case TypeKind::kPrimitive:
      case TypeKind::kString:
      case TypeKind::kPointer:
        return {t->prim_, local, t->string_capacity_};
      case TypeKind::kArray: {
        uint64_t eu = t->element_->prim_units();
        uint64_t e = unit / eu;
        local += static_cast<uint32_t>(e * t->element_stride_);
        unit -= e * eu;
        t = t->element_;
        break;
      }
      case TypeKind::kStruct: {
        size_t i = t->field_index_for_unit(unit);
        const Field& f = t->fields_[i];
        local += f.local_offset;
        unit -= f.prim_offset;
        t = f.type;
        break;
      }
    }
  }
}

UnitAtOffset TypeDescriptor::unit_at_local_offset(uint32_t offset) const {
  const TypeDescriptor* t = this;
  uint64_t unit = 0;
  uint32_t base = 0;
  if (offset >= local_size_) offset = local_size_ ? local_size_ - 1 : 0;
  for (;;) {
    uint32_t rel = offset - base;
    switch (t->kind_) {
      case TypeKind::kPrimitive:
      case TypeKind::kString:
      case TypeKind::kPointer:
        return {unit, base};
      case TypeKind::kArray: {
        uint64_t e = rel / t->element_stride_;
        if (e >= t->count_) e = t->count_ - 1;
        base += static_cast<uint32_t>(e * t->element_stride_);
        unit += e * t->element_->prim_units();
        // Tail padding of an element maps to its last unit; clamp below.
        if (offset - base >= t->element_->local_size()) {
          offset = base + t->element_->local_size() - 1;
        }
        t = t->element_;
        break;
      }
      case TypeKind::kStruct: {
        size_t i = t->field_index_for_local(rel);
        const Field& f = t->fields_[i];
        base += f.local_offset;
        unit += f.prim_offset;
        if (offset < base) offset = base;  // landed in inter-field padding
        if (offset - base >= f.type->local_size()) {
          offset = base + f.type->local_size() - 1;  // tail padding
        }
        t = f.type;
        break;
      }
    }
  }
}

}  // namespace iw
