#include "types/translation_plan.hpp"

#include <memory>

#include "types/type_desc.hpp"
#include "util/error.hpp"

namespace iw {

TranslationPlan::~TranslationPlan() = default;

const TranslationPlan& TranslationPlan::of(const TypeDescriptor& type,
                                           const LayoutRules& rules) {
  TranslationCounters* counters = type.translation_counters();
  TranslationPlan* plan = type.plan_.load(std::memory_order_acquire);
  if (plan == nullptr) {
    auto fresh =
        std::unique_ptr<TranslationPlan>(new TranslationPlan(type, rules));
    TranslationPlan* expected = nullptr;
    if (type.plan_.compare_exchange_strong(expected, fresh.get(),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      plan = fresh.release();
      if (counters != nullptr) {
        counters->plan_cache_misses.fetch_add(1, std::memory_order_relaxed);
      }
      return *plan;
    }
    plan = expected;  // another thread compiled concurrently; use theirs
  }
  if (counters != nullptr) {
    counters->plan_cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return *plan;
}

TranslationPlan::TranslationPlan(const TypeDescriptor& type,
                                 const LayoutRules& rules) {
  prim_units_ = type.prim_units();
  swap_ = rules.byte_order != ByteOrder::kBig;
  compile(type, 0, 0, rules);
  finalize();
}

void TranslationPlan::append_run(PrimitiveKind kind, uint64_t first_unit,
                                 uint64_t count, uint32_t local_offset,
                                 uint32_t stride, uint32_t capacity) {
  if (count == 0) return;
  if (!ops_.empty()) {
    PlanOp& prev = ops_.back();
    if (prev.op == PlanOp::Kind::kRun && prev.prim == kind &&
        prev.string_capacity == capacity &&
        prev.first_unit + prev.unit_count == first_unit &&
        local_offset > prev.local_offset) {
      if (prev.unit_count == 1) {
        // A lone unit adopts whatever gap follows it as the run stride.
        uint32_t gap = local_offset - prev.local_offset;
        if (count == 1 || stride == gap) {
          prev.local_stride = gap;
          prev.unit_count += count;
          return;
        }
      } else if (local_offset ==
                     prev.local_offset + prev.unit_count * prev.local_stride &&
                 (count == 1 || stride == prev.local_stride)) {
        prev.unit_count += count;
        return;
      }
    }
  }
  PlanOp op;
  op.op = PlanOp::Kind::kRun;
  op.prim = kind;
  op.first_unit = first_unit;
  op.unit_count = count;
  op.local_offset = local_offset;
  op.local_stride = stride;
  op.string_capacity = capacity;
  ops_.push_back(op);
}

void TranslationPlan::compile(const TypeDescriptor& type, uint64_t unit_base,
                              uint32_t local_base, const LayoutRules& rules) {
  switch (type.kind()) {
    case TypeKind::kPrimitive:
    case TypeKind::kString:
    case TypeKind::kPointer:
      append_run(type.primitive(), unit_base, 1, local_base, type.local_size(),
                 type.string_capacity());
      return;
    case TypeKind::kArray: {
      const TypeDescriptor* elem = type.element();
      if (type.count() == 0) return;
      if (elem->kind() == TypeKind::kPrimitive ||
          elem->kind() == TypeKind::kString ||
          elem->kind() == TypeKind::kPointer) {
        append_run(elem->primitive(), unit_base, type.count(), local_base,
                   type.element_stride(), elem->string_capacity());
        return;
      }
      const TranslationPlan& ep = TranslationPlan::of(*elem, rules);
      uint64_t eu = elem->prim_units();
      if (ep.ops().size() == 1 && ep.ops()[0].op == PlanOp::Kind::kRun &&
          ep.ops()[0].unit_count == eu &&
          type.element_stride() == ep.ops()[0].local_stride * eu) {
        // Elements are one homogeneous run each and butt up against each
        // other at a uniform stride: collapse the whole array to one run.
        const PlanOp& r = ep.ops()[0];
        append_run(r.prim, unit_base, type.count() * eu,
                   local_base + r.local_offset, r.local_stride,
                   r.string_capacity);
        return;
      }
      PlanOp op;
      op.op = PlanOp::Kind::kLoop;
      op.first_unit = unit_base;
      op.unit_count = type.count() * eu;
      op.local_offset = local_base;
      op.local_stride = type.element_stride();
      op.elem_plan = &ep;
      op.elem_count = type.count();
      op.units_per_elem = eu;
      ops_.push_back(op);
      return;
    }
    case TypeKind::kStruct:
      for (const TypeDescriptor::Field& f : type.fields()) {
        compile(*f.type, unit_base + f.prim_offset,
                local_base + f.local_offset, rules);
      }
      return;
  }
}

void TranslationPlan::finalize() {
  uint64_t wire = 0;
  bool iso = true;
  for (PlanOp& op : ops_) {
    op.wire_offset = wire;
    if (op.op == PlanOp::Kind::kRun) {
      if (op.prim == PrimitiveKind::kString ||
          op.prim == PrimitiveKind::kPointer) {
        variable_ = true;
        iso = false;
        continue;
      }
      uint32_t ws = wire_size_of(op.prim);
      wire += op.unit_count * ws;
      iso = iso && op.local_offset == op.wire_offset &&
            op.local_stride == ws && (ws == 1 || !swap_);
    } else {
      if (op.elem_plan->variable()) {
        variable_ = true;
        iso = false;
        continue;
      }
      op.wire_per_elem = op.elem_plan->fixed_wire_size();
      wire += op.elem_count * op.wire_per_elem;
      iso = iso && op.elem_plan->isomorphic() &&
            op.local_offset == op.wire_offset &&
            op.local_stride == op.wire_per_elem;
    }
  }
  fixed_wire_size_ = wire;
  isomorphic_ = iso && !variable_;
}

size_t TranslationPlan::op_index(uint64_t unit) const noexcept {
  size_t lo = 0;
  size_t hi = ops_.size();
  while (lo + 1 < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (ops_[mid].first_unit <= unit) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint64_t TranslationPlan::fixed_wire_offset_of(uint64_t unit) const noexcept {
  if (unit >= prim_units_) return fixed_wire_size_;
  const PlanOp& op = ops_[op_index(unit)];
  uint64_t rel = unit - op.first_unit;
  if (op.op == PlanOp::Kind::kRun) {
    return op.wire_offset + rel * wire_size_of(op.prim);
  }
  uint64_t q = rel / op.units_per_elem;
  uint64_t r = rel % op.units_per_elem;
  return op.wire_offset + q * op.wire_per_elem +
         op.elem_plan->fixed_wire_offset_of(r);
}

}  // namespace iw
