// Type descriptors: the reflection metadata that drives every translation.
//
// A TypeDescriptor describes one shared type as a tree of primitives,
// fixed-capacity strings, pointers, arrays and structs. Each descriptor is
// *instantiated against a LayoutRules* (a client's platform, or the server's
// packed canonical layout), which fixes:
//
//   * local_size / local_align — byte layout in that memory representation
//   * per-field local byte offsets (platform alignment applied)
//   * per-field machine-independent *primitive offsets*, counted in
//     primitive data units exactly as in the paper — these are identical on
//     every platform and are the coordinate system of MIPs and wire diffs.
//
// Descriptors are immutable after construction and owned by a TypeRegistry.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "types/platform.hpp"
#include "util/error.hpp"

namespace iw {

class TranslationPlan;
struct TranslationCounters;

enum class TypeKind : uint8_t {
  kPrimitive = 0,
  kString = 1,
  kPointer = 2,
  kArray = 3,
  kStruct = 4,
};

/// Location of one primitive data unit inside a block of some type.
struct PrimLocation {
  PrimitiveKind kind;
  uint32_t local_offset;     ///< byte offset of the unit in local format
  uint32_t string_capacity;  ///< valid when kind == kString
};

/// Result of mapping a local byte offset back to its primitive unit.
struct UnitAtOffset {
  uint64_t unit_index;    ///< primitive offset of the containing unit
  uint32_t local_offset;  ///< byte offset where that unit starts
};

/// A maximal homogeneous run of primitive units, yielded by visit_runs().
/// Translation loops over units within a run without re-walking the tree;
/// the isomorphic-descriptor optimization exists to make runs longer.
struct PrimRun {
  PrimitiveKind kind;
  uint64_t first_unit;       ///< primitive offset of the run's first unit
  uint64_t unit_count;
  uint32_t local_offset;     ///< byte offset of the first unit
  uint32_t local_stride;     ///< bytes between consecutive units
  uint32_t string_capacity;  ///< valid when kind == kString
};

class TypeRegistry;

class TypeDescriptor {
 public:
  ~TypeDescriptor();

  TypeKind kind() const noexcept { return kind_; }
  PrimitiveKind primitive() const noexcept { return prim_; }

  /// Byte size / alignment in the memory representation this descriptor was
  /// instantiated for.
  uint32_t local_size() const noexcept { return local_size_; }
  uint32_t local_align() const noexcept { return local_align_; }

  /// Machine-independent size in primitive data units.
  uint64_t prim_units() const noexcept { return prim_units_; }

  /// True when the wire encoding of a value of this type has variable length
  /// (contains strings or pointers/MIPs).
  bool has_variable_wire_size() const noexcept { return variable_wire_; }

  /// Total wire bytes of the fixed-size units (strings/pointers excluded;
  /// they are length-prefixed individually).
  uint64_t fixed_wire_size() const noexcept { return fixed_wire_size_; }

  // --- kString ---
  uint32_t string_capacity() const noexcept { return string_capacity_; }

  // --- kPointer ---
  /// Pointee type; may be nullptr for an opaque pointer.
  const TypeDescriptor* pointee() const noexcept { return pointee_; }

  // --- kArray ---
  const TypeDescriptor* element() const noexcept { return element_; }
  uint64_t count() const noexcept { return count_; }
  uint32_t element_stride() const noexcept { return element_stride_; }

  // --- kStruct ---
  struct Field {
    std::string name;
    const TypeDescriptor* type;
    uint32_t local_offset;  ///< platform-aligned byte offset
    uint64_t prim_offset;   ///< machine-independent unit offset
  };
  const std::string& struct_name() const noexcept { return struct_name_; }
  const std::vector<Field>& fields() const noexcept { return fields_; }

  /// For fixed-wire-size structs of modest size: the precomputed run list
  /// covering one whole value (unit/local offsets relative to its start).
  /// Lets the translation engine iterate struct arrays without re-walking
  /// the descriptor tree per element. Empty when not precomputed.
  const std::vector<PrimRun>& flat_runs() const noexcept { return flat_runs_; }

  /// Maps a primitive offset to the unit's kind and local byte offset.
  /// Throws Error(kInvalidArgument) when `unit` >= prim_units().
  PrimLocation locate_prim(uint64_t unit) const;

  /// Maps a local byte offset to the primitive unit containing it (padding
  /// bytes map to the *next* unit; offsets past the last unit clamp to it).
  UnitAtOffset unit_at_local_offset(uint32_t offset) const;

  /// Visits maximal homogeneous runs covering units [begin, end).
  /// Visitor signature: void(const PrimRun&).
  template <typename F>
  void visit_runs(uint64_t begin, uint64_t end, F&& fn) const {
    visit_runs_impl(begin, end, 0, 0, fn);
  }

  /// The owning registry's translation counters (null for descriptors built
  /// outside a registry, which does not happen in practice).
  TranslationCounters* translation_counters() const noexcept {
    return counters_;
  }

 private:
  friend class TypeRegistry;
  friend class TranslationPlan;
  TypeDescriptor() = default;

  template <typename F>
  void visit_runs_impl(uint64_t begin, uint64_t end, uint64_t unit_base,
                       uint32_t local_base, F&& fn) const {
    if (begin >= end) return;
    switch (kind_) {
      case TypeKind::kPrimitive:
      case TypeKind::kString:
      case TypeKind::kPointer: {
        PrimRun run;
        run.kind = prim_;
        run.first_unit = unit_base;
        run.unit_count = 1;
        run.local_offset = local_base;
        run.local_stride = local_size_;
        run.string_capacity = string_capacity_;
        fn(run);
        return;
      }
      case TypeKind::kArray: {
        uint64_t eu = element_->prim_units();
        uint64_t first_elem = begin / eu;
        uint64_t last_elem = (end - 1) / eu;
        if (element_->kind() == TypeKind::kPrimitive ||
            element_->kind() == TypeKind::kString ||
            element_->kind() == TypeKind::kPointer) {
          // Homogeneous element: one run for the whole visited range.
          PrimRun run;
          run.kind = element_->primitive();
          run.first_unit = unit_base + begin;
          run.unit_count = end - begin;
          run.local_offset =
              local_base + static_cast<uint32_t>(begin * element_stride_);
          run.local_stride = element_stride_;
          run.string_capacity = element_->string_capacity();
          fn(run);
          return;
        }
        for (uint64_t e = first_elem; e <= last_elem; ++e) {
          uint64_t elem_begin = e * eu;
          uint64_t b = (begin > elem_begin) ? begin - elem_begin : 0;
          uint64_t rel_end = end - elem_begin;
          uint64_t t = (rel_end < eu) ? rel_end : eu;
          element_->visit_runs_impl(
              b, t, unit_base + elem_begin,
              local_base + static_cast<uint32_t>(e * element_stride_), fn);
        }
        return;
      }
      case TypeKind::kStruct: {
        // Find the first field containing `begin` by prim_offset.
        size_t lo = field_index_for_unit(begin);
        for (size_t i = lo; i < fields_.size(); ++i) {
          const Field& f = fields_[i];
          if (f.prim_offset >= end) break;
          uint64_t fu = f.type->prim_units();
          uint64_t b = (begin > f.prim_offset) ? begin - f.prim_offset : 0;
          uint64_t rel_end = end - f.prim_offset;
          uint64_t t = (rel_end < fu) ? rel_end : fu;
          f.type->visit_runs_impl(b, t, unit_base + f.prim_offset,
                                  local_base + f.local_offset, fn);
        }
        return;
      }
    }
  }

  /// Index of the struct field whose unit range contains `unit`.
  size_t field_index_for_unit(uint64_t unit) const noexcept;
  /// Index of the struct field whose local byte range contains `offset`
  /// (padding maps to the following field).
  size_t field_index_for_local(uint32_t offset) const noexcept;

  TypeKind kind_ = TypeKind::kPrimitive;
  PrimitiveKind prim_ = PrimitiveKind::kChar;
  uint32_t string_capacity_ = 0;
  const TypeDescriptor* pointee_ = nullptr;
  const TypeDescriptor* element_ = nullptr;
  uint64_t count_ = 0;
  uint32_t element_stride_ = 0;
  std::string struct_name_;
  std::vector<Field> fields_;

  uint32_t local_size_ = 0;
  uint32_t local_align_ = 1;
  uint64_t prim_units_ = 0;
  uint64_t fixed_wire_size_ = 0;
  bool variable_wire_ = false;
  std::vector<PrimRun> flat_runs_;

  /// Compiled-once translation plan (see types/translation_plan.hpp); set
  /// lazily by TranslationPlan::of, owned by this descriptor.
  mutable std::atomic<TranslationPlan*> plan_{nullptr};
  /// Owning registry's counters; set at allocation, outlives the descriptor.
  TranslationCounters* counters_ = nullptr;
};

}  // namespace iw
