// Machine-architecture models ("platforms") and layout rules.
//
// The paper runs InterWeave across Alpha, Sparc, x86 and MIPS. This repo
// runs on one host, so heterogeneity is *simulated at the data level*: each
// client is bound to a Platform describing the byte order, primitive sizes
// and alignments of the architecture it pretends to be. The local copy of a
// segment is laid out and byte-ordered per that platform, so every
// translation, alignment-compensation and byte-swap path in the library is
// exercised exactly as it would be on real heterogeneous hardware.
//
// LayoutRules is the lower-level knob set shared by clients (platform
// layout) and the server (packed canonical layout, see server/).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace iw {

/// The primitive data units of the paper: offsets inside blocks are counted
/// in these, never in bytes, which is what makes MIPs machine-independent.
enum class PrimitiveKind : uint8_t {
  kChar = 0,     ///< 1-byte character / int8
  kInt16 = 1,    ///< 16-bit signed integer
  kInt32 = 2,    ///< 32-bit signed integer
  kInt64 = 3,    ///< 64-bit signed integer
  kFloat32 = 4,  ///< IEEE-754 single
  kFloat64 = 5,  ///< IEEE-754 double
  kPointer = 6,  ///< machine pointer locally; MIP string on the wire
  kString = 7,   ///< fixed-capacity char array locally; variable on the wire
};
inline constexpr int kNumPrimitiveKinds = 8;

/// Name for diagnostics ("int32", "pointer", ...).
const char* primitive_kind_name(PrimitiveKind kind) noexcept;

/// Canonical (wire) byte size of one unit of `kind`. Pointer and string are
/// variable-length on the wire; this returns their *placeholder* cost used
/// for diff-length bookkeeping (they are length-prefixed separately).
uint32_t wire_size_of(PrimitiveKind kind) noexcept;

enum class ByteOrder : uint8_t { kLittle = 0, kBig = 1 };

/// Concrete layout knobs: how big and how aligned each primitive is in a
/// given memory representation, and how that representation orders bytes.
struct LayoutRules {
  ByteOrder byte_order = ByteOrder::kLittle;
  std::array<uint8_t, kNumPrimitiveKinds> size{};   // bytes per unit
  std::array<uint8_t, kNumPrimitiveKinds> align{};  // alignment per unit
  /// Client platforms store a string<N> as an inline NUL-padded char[N];
  /// the server's packed canonical layout stores a 4-byte out-of-line slot
  /// id instead (paper §3.2: variable-size data kept separate).
  bool inline_strings = true;

  /// Packed canonical layout: wire sizes, alignment 1, big-endian. The
  /// server stores block data this way (strings/pointers as 4-byte slot ids
  /// into an out-of-line table, per paper §3.2).
  static LayoutRules packed_canonical() noexcept;
};

/// A (possibly simulated) machine architecture a client runs on.
struct Platform {
  std::string name;
  LayoutRules rules;

  /// The actual host ABI (x86-64 Linux in this repo's evaluation).
  static Platform native();
  /// Synthetic 32-bit big-endian machine (Sparc-like).
  static Platform sparc32();
  /// Synthetic 64-bit big-endian machine with strict alignment (Alpha-ish
  /// byte order aside; used to exercise 8-byte pointer + BE conversion).
  static Platform big64();
  /// Synthetic 32-bit little-endian machine with 2-byte alignment for
  /// everything wider than a byte (packed-ish, m68k-flavoured).
  static Platform packed_le32();
};

}  // namespace iw
