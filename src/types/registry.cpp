#include "types/registry.hpp"

#include <algorithm>

namespace iw {

namespace {
constexpr int idx(PrimitiveKind kind) { return static_cast<int>(kind); }

uint32_t round_up(uint32_t value, uint32_t align) {
  return (value + align - 1) / align * align;
}
}  // namespace

// ---------------------------------------------------------------- builder

StructBuilder& StructBuilder::field(std::string name,
                                    const TypeDescriptor* type) {
  if (type == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "null field type");
  }
  pending_.push_back({std::move(name), type});
  return *this;
}

StructBuilder& StructBuilder::self_pointer_field(std::string name) {
  pending_.push_back({std::move(name), nullptr});
  return *this;
}

const TypeDescriptor* StructBuilder::finish() {
  if (finished_) {
    throw Error(ErrorCode::kState, "StructBuilder::finish called twice");
  }
  if (pending_.empty()) {
    throw Error(ErrorCode::kInvalidArgument, "struct with no fields");
  }
  finished_ = true;
  return registry_->finish_struct(*this);
}

// --------------------------------------------------------------- registry

TypeRegistry::TypeRegistry(LayoutRules rules)
    : TypeRegistry(rules, Options{}) {}

TypeRegistry::TypeRegistry(LayoutRules rules, Options options)
    : rules_(rules), options_(options) {}

size_t TypeRegistry::size() const {
  std::lock_guard lock(mu_);
  return owned_.size();
}

TypeDescriptor* TypeRegistry::alloc() {
  owned_.push_back(std::unique_ptr<TypeDescriptor>(new TypeDescriptor));
  owned_.back()->counters_ = &translation_counters_;
  return owned_.back().get();
}

const TypeDescriptor* TypeRegistry::intern(TypeDescriptor* candidate,
                                           const std::string& key) {
  auto [it, inserted] = interned_.try_emplace(key, candidate);
  if (!inserted) {
    // Discard the candidate; it is the most recent allocation.
    check_internal(owned_.back().get() == candidate, "intern out of order");
    owned_.pop_back();
  } else {
    serials_.emplace(candidate, serials_.size());
  }
  return it->second;
}

void TypeRegistry::compute_scalar_layout(TypeDescriptor* t) const {
  int i = idx(t->prim_);
  switch (t->kind_) {
    case TypeKind::kPrimitive:
      t->local_size_ = rules_.size[i];
      t->local_align_ = rules_.align[i];
      t->prim_units_ = 1;
      t->fixed_wire_size_ = wire_size_of(t->prim_);
      t->variable_wire_ = false;
      break;
    case TypeKind::kString:
      t->local_size_ = rules_.inline_strings
                           ? t->string_capacity_
                           : rules_.size[idx(PrimitiveKind::kString)];
      t->local_align_ = rules_.align[idx(PrimitiveKind::kChar)];
      t->prim_units_ = 1;
      t->fixed_wire_size_ = 0;
      t->variable_wire_ = true;
      break;
    case TypeKind::kPointer:
      t->local_size_ = rules_.size[idx(PrimitiveKind::kPointer)];
      t->local_align_ = rules_.align[idx(PrimitiveKind::kPointer)];
      t->prim_units_ = 1;
      t->fixed_wire_size_ = 0;
      t->variable_wire_ = true;
      break;
    default:
      check_internal(false, "compute_scalar_layout on aggregate");
  }
}

const TypeDescriptor* TypeRegistry::primitive(PrimitiveKind kind) {
  if (kind == PrimitiveKind::kString || kind == PrimitiveKind::kPointer) {
    throw Error(ErrorCode::kInvalidArgument,
                "use string_type()/pointer_to() for string/pointer types");
  }
  std::lock_guard lock(mu_);
  std::string key = std::string("p") + primitive_kind_name(kind);
  if (auto it = interned_.find(key); it != interned_.end()) return it->second;
  TypeDescriptor* t = alloc();
  t->kind_ = TypeKind::kPrimitive;
  t->prim_ = kind;
  compute_scalar_layout(t);
  return intern(t, key);
}

const TypeDescriptor* TypeRegistry::string_type(uint32_t capacity) {
  if (capacity == 0) {
    throw Error(ErrorCode::kInvalidArgument, "string capacity must be > 0");
  }
  std::lock_guard lock(mu_);
  std::string key = "s" + std::to_string(capacity);
  if (auto it = interned_.find(key); it != interned_.end()) return it->second;
  TypeDescriptor* t = alloc();
  t->kind_ = TypeKind::kString;
  t->prim_ = PrimitiveKind::kString;
  t->string_capacity_ = capacity;
  compute_scalar_layout(t);
  return intern(t, key);
}

const TypeDescriptor* TypeRegistry::pointer_to(const TypeDescriptor* pointee) {
  std::lock_guard lock(mu_);
  std::string key =
      "P" + (pointee ? std::to_string(serials_.at(pointee)) : std::string("0"));
  if (auto it = interned_.find(key); it != interned_.end()) return it->second;
  TypeDescriptor* t = alloc();
  t->kind_ = TypeKind::kPointer;
  t->prim_ = PrimitiveKind::kPointer;
  t->pointee_ = pointee;
  compute_scalar_layout(t);
  return intern(t, key);
}

const TypeDescriptor* TypeRegistry::array_of(const TypeDescriptor* element,
                                             uint64_t count) {
  if (element == nullptr || count == 0) {
    throw Error(ErrorCode::kInvalidArgument, "array needs element and count");
  }
  std::lock_guard lock(mu_);
  return array_of_unlocked(element, count);
}

const TypeDescriptor* TypeRegistry::array_of_unlocked(
    const TypeDescriptor* element, uint64_t count) {
  std::string key =
      "a" + std::to_string(count) + "," + std::to_string(serials_.at(element));
  if (auto it = interned_.find(key); it != interned_.end()) return it->second;
  TypeDescriptor* t = alloc();
  t->kind_ = TypeKind::kArray;
  t->element_ = element;
  t->count_ = count;
  t->element_stride_ = round_up(element->local_size(), element->local_align());
  t->local_size_ = static_cast<uint32_t>(t->element_stride_ * count);
  t->local_align_ = element->local_align();
  t->prim_units_ = element->prim_units() * count;
  t->fixed_wire_size_ = element->fixed_wire_size() * count;
  t->variable_wire_ = element->has_variable_wire_size();
  return intern(t, key);
}

StructBuilder TypeRegistry::struct_builder(std::string name) {
  return StructBuilder(this, std::move(name));
}

std::vector<StructBuilder::PendingField> TypeRegistry::apply_isomorphic(
    std::vector<StructBuilder::PendingField> fields) {
  std::vector<StructBuilder::PendingField> out;
  size_t i = 0;
  while (i < fields.size()) {
    const TypeDescriptor* t = fields[i].type;
    if (t != nullptr && t->kind() == TypeKind::kPrimitive) {
      size_t j = i + 1;
      while (j < fields.size() && fields[j].type == t) ++j;
      if (j - i >= 2) {
        // Collapse fields [i, j) into one array field. The synthetic name is
        // library-internal; programs keep using the IDL-generated layout.
        StructBuilder::PendingField merged;
        merged.name = fields[i].name + ".." + fields[j - 1].name;
        merged.type = array_of_unlocked(t, j - i);
        out.push_back(std::move(merged));
        i = j;
        continue;
      }
    }
    out.push_back(std::move(fields[i]));
    ++i;
  }
  return out;
}

void TypeRegistry::layout_struct(
    TypeDescriptor* t, const std::vector<StructBuilder::PendingField>& fields,
    TypeDescriptor* self_ptr_type) {
  uint32_t offset = 0;
  uint64_t units = 0;
  uint32_t align = 1;
  t->fields_.reserve(fields.size());
  for (const auto& pf : fields) {
    const TypeDescriptor* ft = pf.type ? pf.type : self_ptr_type;
    check_internal(ft != nullptr, "unresolved self pointer field");
    offset = round_up(offset, ft->local_align());
    TypeDescriptor::Field f;
    f.name = pf.name;
    f.type = ft;
    f.local_offset = offset;
    f.prim_offset = units;
    t->fields_.push_back(std::move(f));
    offset += ft->local_size();
    units += ft->prim_units();
    align = std::max(align, ft->local_align());
    t->fixed_wire_size_ += ft->fixed_wire_size();
    t->variable_wire_ = t->variable_wire_ || ft->has_variable_wire_size();
  }
  t->kind_ = TypeKind::kStruct;
  t->local_align_ = align;
  t->local_size_ = round_up(offset, align);
  t->prim_units_ = units;

  // Precompute the flat run list for fixed-size structs so translation can
  // iterate arrays of them without per-element tree walks (Fig. 4's
  // int_double / *_struct shapes live on this).
  if (!t->variable_wire_ && t->prim_units_ > 0 && t->prim_units_ <= 4096) {
    t->visit_runs(0, t->prim_units_,
                  [&](const PrimRun& run) { t->flat_runs_.push_back(run); });
  }
}

const TypeDescriptor* TypeRegistry::finish_struct(StructBuilder& builder) {
  std::lock_guard lock(mu_);
  auto fields = builder.pending_;
  if (options_.isomorphic_descriptors) {
    fields = apply_isomorphic(std::move(fields));
  }

  std::string key = "S" + builder.name_ + "{";
  for (const auto& pf : fields) {
    key += pf.name;
    key += ':';
    key += pf.type ? std::to_string(serials_.at(pf.type)) : std::string("self");
    key += ';';
  }
  key += '}';
  if (auto it = interned_.find(key); it != interned_.end()) return it->second;

  TypeDescriptor* t = alloc();
  t->struct_name_ = builder.name_;

  // A self-pointer field needs a pointer descriptor whose pointee is `t`.
  TypeDescriptor* self_ptr = nullptr;
  bool has_self =
      std::any_of(fields.begin(), fields.end(),
                  [](const auto& pf) { return pf.type == nullptr; });
  if (has_self) {
    self_ptr = alloc();
    self_ptr->kind_ = TypeKind::kPointer;
    self_ptr->prim_ = PrimitiveKind::kPointer;
    self_ptr->pointee_ = t;
    compute_scalar_layout(self_ptr);
    serials_.emplace(self_ptr, serials_.size());
    // owned_ back is self_ptr; `t` precedes it — intern() pop logic expects
    // the candidate last, so swap ownership order.
    std::swap(owned_[owned_.size() - 1], owned_[owned_.size() - 2]);
  }

  layout_struct(t, fields, self_ptr);
  return intern(t, key);
}

TypeDescriptor* TypeRegistry::raw_pointer(const TypeDescriptor* pointee) {
  std::lock_guard lock(mu_);
  TypeDescriptor* t = alloc();
  t->kind_ = TypeKind::kPointer;
  t->prim_ = PrimitiveKind::kPointer;
  t->pointee_ = pointee;
  compute_scalar_layout(t);
  serials_.emplace(t, serials_.size());
  return t;
}

TypeDescriptor* TypeRegistry::raw_array(const TypeDescriptor* element,
                                        uint64_t count) {
  std::lock_guard lock(mu_);
  TypeDescriptor* t = alloc();
  t->kind_ = TypeKind::kArray;
  t->element_ = element;
  t->count_ = count;
  t->element_stride_ = round_up(element->local_size(), element->local_align());
  t->local_size_ = static_cast<uint32_t>(t->element_stride_ * count);
  t->local_align_ = element->local_align();
  t->prim_units_ = element->prim_units() * count;
  t->fixed_wire_size_ = element->fixed_wire_size() * count;
  t->variable_wire_ = element->has_variable_wire_size();
  serials_.emplace(t, serials_.size());
  return t;
}

TypeDescriptor* TypeRegistry::raw_struct(
    std::string name, std::vector<StructBuilder::PendingField> fields,
    TypeDescriptor* self) {
  std::lock_guard lock(mu_);
  TypeDescriptor* t = self;
  t->struct_name_ = std::move(name);
  layout_struct(t, fields, nullptr);
  return t;
}

// ------------------------------------------------------------------ codec

namespace {
// Entry tags in the wire table.
constexpr uint8_t kTagPrimitive = 0;
constexpr uint8_t kTagString = 1;
constexpr uint8_t kTagPointer = 2;
constexpr uint8_t kTagArray = 3;
constexpr uint8_t kTagStruct = 4;
constexpr uint32_t kNoPointee = 0xFFFFFFFFu;

void collect(const TypeDescriptor* t,
             std::unordered_map<const TypeDescriptor*, uint32_t>& index,
             std::vector<const TypeDescriptor*>& order) {
  if (index.count(t)) return;
  index.emplace(t, static_cast<uint32_t>(order.size()));
  order.push_back(t);
  switch (t->kind()) {
    case TypeKind::kPrimitive:
    case TypeKind::kString:
      break;
    case TypeKind::kPointer:
      if (t->pointee() != nullptr) collect(t->pointee(), index, order);
      break;
    case TypeKind::kArray:
      collect(t->element(), index, order);
      break;
    case TypeKind::kStruct:
      for (const auto& f : t->fields()) collect(f.type, index, order);
      break;
  }
}
}  // namespace

void TypeCodec::encode_graph(const TypeDescriptor* root, Buffer& out) {
  std::unordered_map<const TypeDescriptor*, uint32_t> index;
  std::vector<const TypeDescriptor*> order;
  collect(root, index, order);
  out.append_u32(static_cast<uint32_t>(order.size()));
  for (const TypeDescriptor* t : order) {
    switch (t->kind()) {
      case TypeKind::kPrimitive:
        out.append_u8(kTagPrimitive);
        out.append_u8(static_cast<uint8_t>(t->primitive()));
        break;
      case TypeKind::kString:
        out.append_u8(kTagString);
        out.append_u32(t->string_capacity());
        break;
      case TypeKind::kPointer:
        out.append_u8(kTagPointer);
        out.append_u32(t->pointee() ? index.at(t->pointee()) : kNoPointee);
        break;
      case TypeKind::kArray:
        out.append_u8(kTagArray);
        out.append_u64(t->count());
        out.append_u32(index.at(t->element()));
        break;
      case TypeKind::kStruct: {
        out.append_u8(kTagStruct);
        out.append_lp_string(t->struct_name());
        out.append_u32(static_cast<uint32_t>(t->fields().size()));
        for (const auto& f : t->fields()) {
          out.append_lp_string(f.name);
          out.append_u32(index.at(f.type));
        }
        break;
      }
    }
  }
}

const TypeDescriptor* TypeCodec::decode_graph(BufReader& in,
                                              TypeRegistry& registry) {
  struct Parsed {
    uint8_t tag = 0;
    uint8_t prim = 0;
    uint32_t capacity = 0;
    uint32_t pointee = kNoPointee;
    uint64_t count = 0;
    uint32_t element = 0;
    std::string name;
    std::vector<std::pair<std::string, uint32_t>> fields;
  };
  uint32_t n = in.read_u32();
  if (n == 0 || n > 1'000'000) {
    throw Error(ErrorCode::kProtocol, "type table size out of range");
  }
  std::vector<Parsed> parsed(n);
  for (auto& p : parsed) {
    p.tag = in.read_u8();
    switch (p.tag) {
      case kTagPrimitive:
        p.prim = in.read_u8();
        if (p.prim >= kNumPrimitiveKinds) {
          throw Error(ErrorCode::kProtocol, "bad primitive kind");
        }
        break;
      case kTagString:
        p.capacity = in.read_u32();
        break;
      case kTagPointer:
        p.pointee = in.read_u32();
        break;
      case kTagArray:
        p.count = in.read_u64();
        p.element = in.read_u32();
        break;
      case kTagStruct: {
        p.name = in.read_lp_string();
        uint32_t nf = in.read_u32();
        for (uint32_t i = 0; i < nf; ++i) {
          std::string fname = in.read_lp_string();
          uint32_t ftype = in.read_u32();
          p.fields.emplace_back(std::move(fname), ftype);
        }
        break;
      }
      default:
        throw Error(ErrorCode::kProtocol, "bad type tag");
    }
  }

  std::vector<TypeDescriptor*> built(n, nullptr);
  std::vector<bool> in_progress(n, false);
  std::vector<std::pair<uint32_t, uint32_t>> pointer_fixups;  // (ptr, pointee)

  auto check_index = [&](uint32_t i) {
    if (i >= n) throw Error(ErrorCode::kProtocol, "type index out of range");
  };

  // Recursive build; cycles (only reachable through pointers) are broken by
  // creating the pointer with a null pointee and fixing it up afterwards.
  auto build = [&](auto&& self, uint32_t i) -> TypeDescriptor* {
    check_index(i);
    if (built[i] != nullptr) return built[i];
    if (in_progress[i]) {
      throw Error(ErrorCode::kProtocol, "value-type cycle in type table");
    }
    in_progress[i] = true;
    const Parsed& p = parsed[i];
    TypeDescriptor* t = nullptr;
    switch (p.tag) {
      case kTagPrimitive:
        t = const_cast<TypeDescriptor*>(
            registry.primitive(static_cast<PrimitiveKind>(p.prim)));
        break;
      case kTagString:
        t = const_cast<TypeDescriptor*>(registry.string_type(p.capacity));
        break;
      case kTagPointer: {
        if (p.pointee == kNoPointee) {
          t = registry.raw_pointer(nullptr);
        } else {
          check_index(p.pointee);
          if (built[p.pointee] != nullptr) {
            t = registry.raw_pointer(built[p.pointee]);
          } else {
            t = registry.raw_pointer(nullptr);
            pointer_fixups.emplace_back(i, p.pointee);
          }
        }
        break;
      }
      case kTagArray:
        t = registry.raw_array(self(self, p.element), p.count);
        break;
      case kTagStruct: {
        // Allocate the struct node first so self-references through pointer
        // entries can be fixed up against it.
        std::vector<StructBuilder::PendingField> fields;
        TypeDescriptor* shell;
        {
          std::lock_guard lock(registry.mu_);
          shell = registry.alloc();
          registry.serials_.emplace(shell, registry.serials_.size());
        }
        built[i] = shell;
        for (const auto& [fname, ftype] : p.fields) {
          check_index(ftype);
          TypeDescriptor* ft;
          if (in_progress[ftype]) {
            // A by-value cycle (struct containing itself) is malformed; only
            // pointer entries may legally reference an in-progress struct.
            throw Error(ErrorCode::kProtocol, "value-type cycle in struct");
          } else if (built[ftype] != nullptr) {
            ft = built[ftype];
          } else {
            ft = self(self, ftype);
          }
          fields.push_back({fname, ft});
        }
        t = registry.raw_struct(p.name, std::move(fields), shell);
        break;
      }
    }
    built[i] = t;
    in_progress[i] = false;
    return t;
  };

  for (uint32_t i = 0; i < n; ++i) build(build, i);
  for (auto [ptr_i, pointee_i] : pointer_fixups) {
    TypeRegistry::fix_pointee(built[ptr_i], built[pointee_i]);
  }
  return built[0];
}

}  // namespace iw
