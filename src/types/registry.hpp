// TypeRegistry: constructs, interns and owns TypeDescriptors for one memory
// representation (a client platform or the server's packed canonical layout).
//
// Construction goes through the registry so that
//   * layout (local offsets, alignment, primitive offsets) is computed once,
//     against this registry's LayoutRules;
//   * structurally identical types are interned to one descriptor, giving
//     cheap pointer-equality type checks within a process;
//   * the isomorphic-descriptor optimization (paper §3.3) is applied
//     deterministically: runs of >= 2 consecutive struct fields of the same
//     primitive kind are collapsed into one array field, purely to lengthen
//     the homogeneous runs the translation loops over. The transform depends
//     only on machine-independent structure, so every platform collapses
//     identically and primitive offsets are unchanged.
//
// Recursive types (e.g. a list node pointing to itself) are built with
// StructBuilder::self_pointer_field. TypeCodec serializes a descriptor graph
// to the wire as an indexed table (cycles become index references), which is
// how clients register their types with the server.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "types/translation_plan.hpp"
#include "types/type_desc.hpp"
#include "util/buffer.hpp"

namespace iw {

class TypeRegistry;

/// Incremental builder for (possibly self-referential) struct types.
class StructBuilder {
 public:
  /// Adds a field of a completed type.
  StructBuilder& field(std::string name, const TypeDescriptor* type);
  /// Adds a pointer field whose pointee is the struct being built.
  StructBuilder& self_pointer_field(std::string name);
  /// Computes layout, interns, and returns the finished descriptor.
  const TypeDescriptor* finish();

  /// A field awaiting layout; `type == nullptr` marks a self-pointer.
  /// (Public so the wire codec can stage decoded fields.)
  struct PendingField {
    std::string name;
    const TypeDescriptor* type;
  };

 private:
  friend class TypeRegistry;
  StructBuilder(TypeRegistry* reg, std::string name)
      : registry_(reg), name_(std::move(name)) {}

  TypeRegistry* registry_;
  std::string name_;
  std::vector<PendingField> pending_;
  bool finished_ = false;
};

class TypeRegistry {
 public:
  struct Options {
    /// Paper §3.3 "isomorphic type descriptors"; off only for ablation.
    bool isomorphic_descriptors = true;
  };

  explicit TypeRegistry(LayoutRules rules);
  TypeRegistry(LayoutRules rules, Options options);

  const LayoutRules& rules() const noexcept { return rules_; }
  const Options& options() const noexcept { return options_; }

  /// Interned descriptor for a scalar primitive (not kString/kPointer).
  const TypeDescriptor* primitive(PrimitiveKind kind);

  /// Fixed-capacity string (local format: char[capacity], NUL-padded).
  const TypeDescriptor* string_type(uint32_t capacity);

  /// Pointer to a completed type; pass nullptr for an opaque pointer.
  const TypeDescriptor* pointer_to(const TypeDescriptor* pointee);

  /// Fixed-length array.
  const TypeDescriptor* array_of(const TypeDescriptor* element, uint64_t count);

  /// Starts building a struct named `name`.
  StructBuilder struct_builder(std::string name);

  /// Number of descriptors owned (diagnostics/tests).
  size_t size() const;

  /// Snapshot of the translation counters accumulated by every plan-compiled
  /// encode/decode over this registry's descriptors (relaxed atomics; safe
  /// without any lock).
  TranslationStats translation_stats() const noexcept {
    return translation_counters_.snapshot();
  }
  void reset_translation_stats() noexcept { translation_counters_.reset(); }

 private:
  friend class StructBuilder;
  friend class TypeCodec;

  TypeDescriptor* alloc();
  const TypeDescriptor* intern(TypeDescriptor* candidate,
                               const std::string& key);
  const TypeDescriptor* finish_struct(StructBuilder& builder);
  const TypeDescriptor* array_of_unlocked(const TypeDescriptor* element,
                                          uint64_t count);
  void compute_scalar_layout(TypeDescriptor* t) const;

  // Non-interning creation paths used by TypeCodec when reconstructing a
  // graph received from the wire (fresh nodes allow post-hoc pointee fixup).
  TypeDescriptor* raw_pointer(const TypeDescriptor* pointee);
  TypeDescriptor* raw_array(const TypeDescriptor* element, uint64_t count);
  TypeDescriptor* raw_struct(std::string name,
                             std::vector<StructBuilder::PendingField> fields,
                             TypeDescriptor* self);
  static void fix_pointee(TypeDescriptor* ptr, const TypeDescriptor* pointee) {
    ptr->pointee_ = pointee;
  }

  void layout_struct(TypeDescriptor* t,
                     const std::vector<StructBuilder::PendingField>& fields,
                     TypeDescriptor* self_ptr_type);
  std::vector<StructBuilder::PendingField> apply_isomorphic(
      std::vector<StructBuilder::PendingField> fields);
  std::string key_of(const TypeDescriptor* t) const;

  mutable std::mutex mu_;
  LayoutRules rules_;
  Options options_;
  /// Shared by all owned descriptors; must outlive them (declared before
  /// owned_ so it is destroyed after).
  mutable TranslationCounters translation_counters_;
  std::deque<std::unique_ptr<TypeDescriptor>> owned_;
  std::unordered_map<std::string, const TypeDescriptor*> interned_;
  std::unordered_map<const TypeDescriptor*, uint64_t> serials_;
};

/// Serializes descriptor graphs for client->server type registration.
class TypeCodec {
 public:
  /// Encodes the graph reachable from `root` as an indexed table.
  static void encode_graph(const TypeDescriptor* root, Buffer& out);

  /// Decodes a graph into `registry` (fresh, non-interned nodes) and returns
  /// the root. Throws Error(kProtocol) on malformed input.
  static const TypeDescriptor* decode_graph(BufReader& in,
                                            TypeRegistry& registry);
};

}  // namespace iw
