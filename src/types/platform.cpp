#include "types/platform.hpp"

#include "util/endian.hpp"

namespace iw {

const char* primitive_kind_name(PrimitiveKind kind) noexcept {
  switch (kind) {
    case PrimitiveKind::kChar: return "char";
    case PrimitiveKind::kInt16: return "int16";
    case PrimitiveKind::kInt32: return "int32";
    case PrimitiveKind::kInt64: return "int64";
    case PrimitiveKind::kFloat32: return "float32";
    case PrimitiveKind::kFloat64: return "float64";
    case PrimitiveKind::kPointer: return "pointer";
    case PrimitiveKind::kString: return "string";
  }
  return "?";
}

uint32_t wire_size_of(PrimitiveKind kind) noexcept {
  switch (kind) {
    case PrimitiveKind::kChar: return 1;
    case PrimitiveKind::kInt16: return 2;
    case PrimitiveKind::kInt32: return 4;
    case PrimitiveKind::kInt64: return 8;
    case PrimitiveKind::kFloat32: return 4;
    case PrimitiveKind::kFloat64: return 8;
    case PrimitiveKind::kPointer: return 4;  // placeholder/slot cost
    case PrimitiveKind::kString: return 4;   // placeholder/slot cost
  }
  return 1;
}

namespace {
constexpr int k(PrimitiveKind kind) { return static_cast<int>(kind); }

LayoutRules make_rules(ByteOrder order, uint8_t ptr_size, uint8_t ptr_align,
                       uint8_t max_align) {
  LayoutRules r;
  r.byte_order = order;
  auto set = [&](PrimitiveKind kind, uint8_t size, uint8_t align) {
    r.size[k(kind)] = size;
    r.align[k(kind)] = static_cast<uint8_t>(align > max_align ? max_align : align);
  };
  set(PrimitiveKind::kChar, 1, 1);
  set(PrimitiveKind::kInt16, 2, 2);
  set(PrimitiveKind::kInt32, 4, 4);
  set(PrimitiveKind::kInt64, 8, 8);
  set(PrimitiveKind::kFloat32, 4, 4);
  set(PrimitiveKind::kFloat64, 8, 8);
  set(PrimitiveKind::kPointer, ptr_size, ptr_align);
  // kString's size/align are per-type (capacity); the table stores the
  // element (char) properties used to scale it.
  set(PrimitiveKind::kString, 1, 1);
  return r;
}
}  // namespace

LayoutRules LayoutRules::packed_canonical() noexcept {
  LayoutRules r;
  r.byte_order = ByteOrder::kBig;
  for (int i = 0; i < kNumPrimitiveKinds; ++i) {
    r.size[i] = static_cast<uint8_t>(wire_size_of(static_cast<PrimitiveKind>(i)));
    r.align[i] = 1;
  }
  r.inline_strings = false;
  return r;
}

Platform Platform::native() {
  Platform p;
  p.name = "native-x86_64";
  p.rules = make_rules(
      kHostLittleEndian ? ByteOrder::kLittle : ByteOrder::kBig, 8, 8, 8);
  return p;
}

Platform Platform::sparc32() {
  Platform p;
  p.name = "sparc32";
  p.rules = make_rules(ByteOrder::kBig, 4, 4, 8);
  return p;
}

Platform Platform::big64() {
  Platform p;
  p.name = "big64";
  p.rules = make_rules(ByteOrder::kBig, 8, 8, 8);
  return p;
}

Platform Platform::packed_le32() {
  Platform p;
  p.name = "packed-le32";
  p.rules = make_rules(ByteOrder::kLittle, 4, 2, 2);
  return p;
}

}  // namespace iw
