#include "util/crc32c.hpp"

#include <cstring>

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#endif

namespace iw {

namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

/// Slice-by-8 lookup tables, built once at first use. table[0] is the
/// classic byte-at-a-time table; table[k] advances a byte that sits k
/// positions deeper in the 8-byte word being folded.
struct Tables {
  uint32_t t[8][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

/// Raw (non-finalized) software update.
uint32_t update_sw(uint32_t crc, const uint8_t* p, size_t n) {
  const Tables& tb = tables();
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    word = __builtin_bswap64(word);
#endif
    word ^= crc;
    crc = tb.t[7][word & 0xFF] ^ tb.t[6][(word >> 8) & 0xFF] ^
          tb.t[5][(word >> 16) & 0xFF] ^ tb.t[4][(word >> 24) & 0xFF] ^
          tb.t[3][(word >> 32) & 0xFF] ^ tb.t[2][(word >> 40) & 0xFF] ^
          tb.t[1][(word >> 48) & 0xFF] ^ tb.t[0][(word >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define IW_CRC32C_X86 1
__attribute__((target("sse4.2"))) uint32_t update_hw(uint32_t crc,
                                                     const uint8_t* p,
                                                     size_t n) {
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  return crc;
}

bool hw_available() { return __builtin_cpu_supports("sse4.2"); }

#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define IW_CRC32C_ARM 1
uint32_t update_hw(uint32_t crc, const uint8_t* p, size_t n) {
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __crc32cb(crc, *p++);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc = __crc32cd(crc, word);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = __crc32cb(crc, *p++);
    --n;
  }
  return crc;
}

bool hw_available() { return true; }  // compiled in => ISA guarantees it

#else
uint32_t update_hw(uint32_t crc, const uint8_t* p, size_t n) {
  return update_sw(crc, p, n);
}
bool hw_available() { return false; }
#endif

using UpdateFn = uint32_t (*)(uint32_t, const uint8_t*, size_t);

/// Dispatch decided once; no per-call CPUID.
UpdateFn pick_update() { return hw_available() ? &update_hw : &update_sw; }

UpdateFn dispatched() {
  static const UpdateFn fn = pick_update();
  return fn;
}

}  // namespace

uint32_t crc32c_sw(uint32_t crc, const void* p, size_t n) {
  return ~update_sw(~crc, static_cast<const uint8_t*>(p), n);
}

uint32_t crc32c_extend(uint32_t crc, const void* p, size_t n) {
  return ~dispatched()(~crc, static_cast<const uint8_t*>(p), n);
}

uint32_t crc32c(const void* p, size_t n) { return crc32c_extend(0, p, n); }

bool crc32c_hardware() { return hw_available(); }

}  // namespace iw
