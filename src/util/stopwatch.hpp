// Monotonic timing helper used by the coherence layer (Temporal coherence
// needs a real-time stamp per cached segment) and by the benchmarks.
#pragma once

#include <chrono>
#include <cstdint>

namespace iw {

/// Monotonic nanosecond clock reading.
inline int64_t monotonic_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Simple restartable stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(monotonic_ns()) {}
  void restart() noexcept { start_ = monotonic_ns(); }
  int64_t elapsed_ns() const noexcept { return monotonic_ns() - start_; }
  double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  int64_t start_;
};

}  // namespace iw
