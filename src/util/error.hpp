// Error model for the InterWeave library.
//
// Exceptional conditions (protocol violations, I/O failures, type errors)
// throw iw::Error, which carries a category so callers can dispatch without
// string matching. Lookup-style APIs that can legitimately miss return
// optional/pointer instead of throwing.
//
// Failure handling distinguishes two axes:
//   * the code — what went wrong (kTimedOut, kConnReset, ...);
//   * the origin — whether the error was raised by the local transport
//     (is_transport()) or decoded from a server kError response frame.
// A retry policy may only replay a request when the failure was a local
// transport failure with a retryable code; a server-side kIo (say, a failed
// checkpoint write) travels as an error frame and is never retried blindly.
#pragma once

#include <cstring>
#include <stdexcept>
#include <string>

namespace iw {

/// Broad classification of an error, used programmatically by callers.
enum class ErrorCode {
  kInvalidArgument,  ///< caller passed something malformed
  kNotFound,         ///< named entity (segment, block, type) does not exist
  kAlreadyExists,    ///< creation collided with an existing entity
  kProtocol,         ///< malformed or unexpected wire message
  kIo,               ///< OS-level I/O failure (errno preserved in message)
  kState,            ///< operation invalid in the current state (e.g. no lock)
  kUnimplemented,    ///< feature intentionally absent
  kInternal,         ///< invariant violation inside the library
  kTimedOut,         ///< call deadline expired (ETIMEDOUT or client deadline)
  kConnReset,        ///< peer reset/severed the connection (ECONNRESET)
  kBrokenPipe,       ///< write to a closed connection (EPIPE)
  kLeaseExpired,     ///< writer lease reclaimed; transaction must be retried
  kStaleEpoch,       ///< sender's placement epoch is behind; it was deposed
  kCorruptPayload,   ///< compressed/framed payload failed integrity checks
};

/// Number of ErrorCode values (for tables and wire-name decoding loops).
inline constexpr int kErrorCodeCount =
    static_cast<int>(ErrorCode::kCorruptPayload) + 1;

/// Human-readable name of an ErrorCode ("NotFound", "Io", ...).
const char* error_code_name(ErrorCode code) noexcept;

/// Exception thrown by InterWeave components on failure.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " + message),
        code_(code) {}

  /// Builds an error raised by the local transport itself (socket failure,
  /// call deadline, injected fault) as opposed to one decoded from a server
  /// kError frame. Only transport errors are candidates for replay.
  static Error transport(ErrorCode code, const std::string& message) {
    Error e(code, message);
    e.transport_ = true;
    return e;
  }

  ErrorCode code() const noexcept { return code_; }
  bool is_transport() const noexcept { return transport_; }

 private:
  ErrorCode code_;
  bool transport_ = false;
};

/// True when the error came from the local transport with a code that is
/// safe to retry after tearing down and re-establishing the connection.
inline bool is_retryable_transport(const Error& e) noexcept {
  if (!e.is_transport()) return false;
  switch (e.code()) {
    case ErrorCode::kIo:
    case ErrorCode::kTimedOut:
    case ErrorCode::kConnReset:
    case ErrorCode::kBrokenPipe:
      return true;
    default:
      return false;
  }
}

/// Throws a transport Error carrying the current errno and a context string.
/// ETIMEDOUT, ECONNRESET, and EPIPE map to their dedicated codes so retry
/// policies can tell a dead peer from, say, a disk failure; everything else
/// is kIo.
[[noreturn]] void throw_errno(const std::string& context);

/// Internal invariant check; throws Error(kInternal) when `cond` is false.
inline void check_internal(bool cond, const char* what) {
  if (!cond) throw Error(ErrorCode::kInternal, what);
}

}  // namespace iw
