// Error model for the InterWeave library.
//
// Exceptional conditions (protocol violations, I/O failures, type errors)
// throw iw::Error, which carries a category so callers can dispatch without
// string matching. Lookup-style APIs that can legitimately miss return
// optional/pointer instead of throwing.
#pragma once

#include <cstring>
#include <stdexcept>
#include <string>

namespace iw {

/// Broad classification of an error, used programmatically by callers.
enum class ErrorCode {
  kInvalidArgument,  ///< caller passed something malformed
  kNotFound,         ///< named entity (segment, block, type) does not exist
  kAlreadyExists,    ///< creation collided with an existing entity
  kProtocol,         ///< malformed or unexpected wire message
  kIo,               ///< OS-level I/O failure (errno preserved in message)
  kState,            ///< operation invalid in the current state (e.g. no lock)
  kUnimplemented,    ///< feature intentionally absent
  kInternal,         ///< invariant violation inside the library
};

/// Human-readable name of an ErrorCode ("NotFound", "Io", ...).
const char* error_code_name(ErrorCode code) noexcept;

/// Exception thrown by InterWeave components on failure.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Throws Error(kIo) carrying the current errno and a context string.
[[noreturn]] void throw_errno(const std::string& context);

/// Internal invariant check; throws Error(kInternal) when `cond` is false.
inline void check_internal(bool cond, const char* what) {
  if (!cond) throw Error(ErrorCode::kInternal, what);
}

}  // namespace iw
