// Deterministic pseudo-random generator for workload synthesis.
//
// The benchmark harness and the Quest-like database generator must produce
// identical workloads across runs so that paper-shape comparisons are
// stable; SplitMix64 is tiny, fast, and fully reproducible.
#pragma once

#include <cstdint>

namespace iw {

/// SplitMix64 PRNG. Satisfies UniformRandomBitGenerator.
class SplitMix64 {
 public:
  using result_type = uint64_t;
  explicit SplitMix64(uint64_t seed) noexcept : state_(seed) {}

  static constexpr uint64_t min() noexcept { return 0; }
  static constexpr uint64_t max() noexcept { return ~0ULL; }

  uint64_t operator()() noexcept {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) noexcept { return (*this)() % bound; }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Geometric-ish positive integer with the given mean (>= 1).
  uint64_t poissonish(double mean) noexcept {
    // Simple inverse-CDF geometric approximation; adequate for workload
    // shaping (the paper only reports averages).
    double u = uniform();
    uint64_t v = 1;
    double p = 1.0 / mean;
    while (u > p && v < 64) {
      u -= p * (1.0 - p);
      ++v;
    }
    return v;
  }

 private:
  uint64_t state_;
};

}  // namespace iw
