// Byte-order primitives for the canonical (big-endian) wire format.
//
// All wire encoding in InterWeave goes through these helpers, so the rest of
// the code can be written in terms of "canonical bytes" without caring about
// the host architecture. The helpers are branch-free on little-endian hosts
// (the common case) via __builtin_bswap.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace iw {

inline constexpr bool kHostLittleEndian =
    std::endian::native == std::endian::little;

inline uint16_t byteswap16(uint16_t v) noexcept { return __builtin_bswap16(v); }
inline uint32_t byteswap32(uint32_t v) noexcept { return __builtin_bswap32(v); }
inline uint64_t byteswap64(uint64_t v) noexcept { return __builtin_bswap64(v); }

/// Converts a host-order integer to big-endian (wire) order.
inline uint16_t host_to_be16(uint16_t v) noexcept {
  return kHostLittleEndian ? byteswap16(v) : v;
}
inline uint32_t host_to_be32(uint32_t v) noexcept {
  return kHostLittleEndian ? byteswap32(v) : v;
}
inline uint64_t host_to_be64(uint64_t v) noexcept {
  return kHostLittleEndian ? byteswap64(v) : v;
}

/// Converts a big-endian (wire) integer to host order.
inline uint16_t be16_to_host(uint16_t v) noexcept { return host_to_be16(v); }
inline uint32_t be32_to_host(uint32_t v) noexcept { return host_to_be32(v); }
inline uint64_t be64_to_host(uint64_t v) noexcept { return host_to_be64(v); }

/// Stores `v` at `p` in big-endian order. `p` need not be aligned.
inline void store_be16(void* p, uint16_t v) noexcept {
  v = host_to_be16(v);
  std::memcpy(p, &v, sizeof v);
}
inline void store_be32(void* p, uint32_t v) noexcept {
  v = host_to_be32(v);
  std::memcpy(p, &v, sizeof v);
}
inline void store_be64(void* p, uint64_t v) noexcept {
  v = host_to_be64(v);
  std::memcpy(p, &v, sizeof v);
}

/// Loads a big-endian value from `p`. `p` need not be aligned.
inline uint16_t load_be16(const void* p) noexcept {
  uint16_t v;
  std::memcpy(&v, p, sizeof v);
  return be16_to_host(v);
}
inline uint32_t load_be32(const void* p) noexcept {
  uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return be32_to_host(v);
}
inline uint64_t load_be64(const void* p) noexcept {
  uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return be64_to_host(v);
}

/// Floating-point values travel as their IEEE-754 bit patterns.
inline void store_be_float(void* p, float v) noexcept {
  store_be32(p, std::bit_cast<uint32_t>(v));
}
inline void store_be_double(void* p, double v) noexcept {
  store_be64(p, std::bit_cast<uint64_t>(v));
}
inline float load_be_float(const void* p) noexcept {
  return std::bit_cast<float>(load_be32(p));
}
inline double load_be_double(const void* p) noexcept {
  return std::bit_cast<double>(load_be64(p));
}

}  // namespace iw
