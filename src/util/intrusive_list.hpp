// Intrusive doubly-linked list with O(1) splice/unlink.
//
// The server keeps every block of a segment on a version-ordered list
// (blk_version_list) and moves blocks to the tail whenever they are
// modified; markers segment the list by version. Both blocks and markers
// embed a ListHook, so moving a node is pointer surgery with no allocation.
#pragma once

#include <cstddef>

#include "util/error.hpp"

namespace iw {

struct ListHook {
  ListHook* prev = nullptr;
  ListHook* next = nullptr;
  bool linked() const noexcept { return prev != nullptr; }
};

/// Intrusive list of T via an embedded ListHook member.
template <typename T, ListHook T::* HookPtr>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.prev = &head_;
    head_.next = &head_;
  }
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const noexcept { return head_.next == &head_; }
  size_t size() const noexcept { return size_; }

  void push_back(T& item) noexcept {
    ListHook* h = hook(item);
    check_link(h);
    h->prev = head_.prev;
    h->next = &head_;
    head_.prev->next = h;
    head_.prev = h;
    ++size_;
  }

  void push_front(T& item) noexcept {
    ListHook* h = hook(item);
    check_link(h);
    h->next = head_.next;
    h->prev = &head_;
    head_.next->prev = h;
    head_.next = h;
    ++size_;
  }

  /// Inserts `item` immediately after `pos` (pos must be linked here).
  void insert_after(T& pos, T& item) noexcept {
    ListHook* p = hook(pos);
    ListHook* h = hook(item);
    check_link(h);
    h->prev = p;
    h->next = p->next;
    p->next->prev = h;
    p->next = h;
    ++size_;
  }

  void erase(T& item) noexcept {
    ListHook* h = hook(item);
    h->prev->next = h->next;
    h->next->prev = h->prev;
    h->prev = h->next = nullptr;
    --size_;
  }

  /// Unlinks `item` and re-appends it at the tail (the server's
  /// "block was modified, move to end of version list" operation).
  void move_to_back(T& item) noexcept {
    erase(item);
    push_back(item);
  }

  T* front() const noexcept {
    return empty() ? nullptr : &value(head_.next);
  }
  T* back() const noexcept {
    return empty() ? nullptr : &value(head_.prev);
  }
  T* next(const T& item) const noexcept {
    ListHook* h = hook(const_cast<T&>(item));
    return h->next == &head_ ? nullptr : &value(h->next);
  }
  T* prev(const T& item) const noexcept {
    ListHook* h = hook(const_cast<T&>(item));
    return h->prev == &head_ ? nullptr : &value(h->prev);
  }

  void clear() noexcept {
    ListHook* h = head_.next;
    while (h != &head_) {
      ListHook* n = h->next;
      h->prev = h->next = nullptr;
      h = n;
    }
    head_.prev = head_.next = &head_;
    size_ = 0;
  }

 private:
  static ListHook* hook(T& item) noexcept { return &(item.*HookPtr); }
  static T& value(ListHook* h) noexcept {
    const T* probe = nullptr;
    auto offset = reinterpret_cast<uintptr_t>(&(probe->*HookPtr));
    return *reinterpret_cast<T*>(reinterpret_cast<uintptr_t>(h) - offset);
  }
  static void check_link(ListHook* h) noexcept {
    check_internal(!h->linked(), "node already linked");
  }

  ListHook head_;
  size_t size_ = 0;
};

}  // namespace iw
