// Seqlock protecting data read from a signal handler.
//
// The SIGSEGV handler that implements twin creation must map a fault address
// to its subsegment without taking a mutex (a handler that blocks on a lock
// held by the interrupted thread deadlocks). Writers — who run in normal
// context — bump the sequence to odd, mutate, bump to even; the handler
// retries its read until it observes a stable even sequence.
#pragma once

#include <atomic>
#include <cstdint>

namespace iw {

class SeqLock {
 public:
  /// Begins a read-side critical section; returns the sequence observed.
  uint32_t read_begin() const noexcept {
    for (;;) {
      uint32_t s = seq_.load(std::memory_order_acquire);
      if ((s & 1u) == 0) return s;
      // writer in progress; spin
    }
  }

  /// Returns true when the section that started at `seq` saw a stable view.
  bool read_retry(uint32_t seq) const noexcept {
    std::atomic_thread_fence(std::memory_order_acquire);
    return seq_.load(std::memory_order_relaxed) != seq;
  }

  void write_begin() noexcept {
    seq_.fetch_add(1, std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_release);
  }

  void write_end() noexcept {
    seq_.fetch_add(1, std::memory_order_release);
  }

 private:
  std::atomic<uint32_t> seq_{0};
};

}  // namespace iw
