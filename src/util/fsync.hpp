// Durable-write helpers shared by the checkpoint writer and the WAL.
//
// Durability on POSIX takes three distinct steps and it is easy to forget
// one: the file's *data* must reach the device (fdatasync), a rename that
// publishes the file must itself be made durable by syncing the containing
// *directory*, and any of these can fail with an errno worth preserving.
// These helpers centralize that discipline; all of them throw Error(kIo)
// (via throw_errno, so the errno text survives) on failure.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace iw {

/// fdatasync(2) on an open descriptor. `context` names the file for the
/// error message.
void fdatasync_fd(int fd, const std::string& context);

/// fsync(2) the directory containing `path_in_dir` (or `path_in_dir`
/// itself when it is a directory), making a completed create/rename within
/// it durable.
void fsync_parent_dir(const std::string& path_in_dir);

/// Atomically replaces `path` with `bytes`: writes `path + ".tmp"`,
/// fdatasyncs it, renames over `path`, and fsyncs the directory. Either
/// the old content or the new content survives a crash, never a mix.
void write_file_durable(const std::string& path,
                        std::span<const uint8_t> bytes);

}  // namespace iw
