#include "util/logging.hpp"

#include <cstdio>

namespace iw {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& message) {
  std::string line = "[iw ";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace iw
