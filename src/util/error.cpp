#include "util/error.hpp"

#include <cerrno>

namespace iw {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kAlreadyExists: return "AlreadyExists";
    case ErrorCode::kProtocol: return "Protocol";
    case ErrorCode::kIo: return "Io";
    case ErrorCode::kState: return "State";
    case ErrorCode::kUnimplemented: return "Unimplemented";
    case ErrorCode::kInternal: return "Internal";
  }
  return "Unknown";
}

void throw_errno(const std::string& context) {
  int err = errno;
  throw Error(ErrorCode::kIo, context + ": " + std::strerror(err));
}

}  // namespace iw
