#include "util/error.hpp"

#include <cerrno>

namespace iw {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kAlreadyExists: return "AlreadyExists";
    case ErrorCode::kProtocol: return "Protocol";
    case ErrorCode::kIo: return "Io";
    case ErrorCode::kState: return "State";
    case ErrorCode::kUnimplemented: return "Unimplemented";
    case ErrorCode::kInternal: return "Internal";
    case ErrorCode::kTimedOut: return "TimedOut";
    case ErrorCode::kConnReset: return "ConnReset";
    case ErrorCode::kBrokenPipe: return "BrokenPipe";
    case ErrorCode::kLeaseExpired: return "LeaseExpired";
    case ErrorCode::kStaleEpoch: return "StaleEpoch";
    case ErrorCode::kCorruptPayload: return "CorruptPayload";
  }
  return "Unknown";
}

void throw_errno(const std::string& context) {
  int err = errno;
  ErrorCode code = ErrorCode::kIo;
  switch (err) {
    case ETIMEDOUT: code = ErrorCode::kTimedOut; break;
    case ECONNRESET: code = ErrorCode::kConnReset; break;
    case EPIPE: code = ErrorCode::kBrokenPipe; break;
    default: break;
  }
  throw Error::transport(code, context + ": " + std::strerror(err));
}

}  // namespace iw
