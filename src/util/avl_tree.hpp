// Intrusive AVL tree — the "balanced search trees" of the paper's metadata.
//
// InterWeave keeps each block in several trees at once (by serial number, by
// name, by address) and each subsegment in a global address tree. An
// intrusive design lets one heap object participate in all of them with zero
// per-insert allocation: the object embeds one AvlHook per tree it belongs
// to, and AvlTree is parameterized by which hook and which key to use.
//
// The tree supports find / lower_bound / insert(unique) / erase / in-order
// iteration, all O(log n), with parent pointers so iteration needs no stack.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/error.hpp"

namespace iw {

/// Embedded per-tree linkage. A struct participating in k trees embeds k
/// hooks. Hooks are POD and must be zero-initialized (or left untouched)
/// before insertion; after erase they may be reused.
struct AvlHook {
  AvlHook* parent = nullptr;
  AvlHook* left = nullptr;
  AvlHook* right = nullptr;
  int8_t balance = 0;  // height(right) - height(left), in {-1, 0, +1}
};

/// Intrusive AVL tree of T ordered by KeyOf(T&) under Compare.
///
/// Template parameters:
///   T       — element type
///   HookPtr — pointer-to-member of the AvlHook inside T used by *this* tree
///   KeyOf   — functor mapping const T& to the ordering key (by value or ref)
///   Compare — strict weak order over keys (default: operator<)
template <typename T, AvlHook T::* HookPtr, typename KeyOf,
          typename Compare = void>
class AvlTree {
 public:
  using Key = std::decay_t<decltype(KeyOf{}(std::declval<const T&>()))>;

  AvlTree() = default;
  AvlTree(const AvlTree&) = delete;
  AvlTree& operator=(const AvlTree&) = delete;

  bool empty() const noexcept { return root_ == nullptr; }
  size_t size() const noexcept { return size_; }

  /// Inserts `item` (by reference; the tree does not own it). Returns false
  /// and leaves the tree unchanged if an equal key is already present.
  bool insert(T& item) {
    AvlHook* h = &(item.*HookPtr);
    h->left = h->right = nullptr;
    h->balance = 0;
    if (root_ == nullptr) {
      h->parent = nullptr;
      root_ = h;
      size_ = 1;
      return true;
    }
    AvlHook* cur = root_;
    const Key key = KeyOf{}(item);
    for (;;) {
      const Key cur_key = KeyOf{}(node_value(cur));
      if (less(key, cur_key)) {
        if (cur->left == nullptr) {
          cur->left = h;
          break;
        }
        cur = cur->left;
      } else if (less(cur_key, key)) {
        if (cur->right == nullptr) {
          cur->right = h;
          break;
        }
        cur = cur->right;
      } else {
        return false;  // duplicate key
      }
    }
    h->parent = cur;
    ++size_;
    rebalance_after_insert(h);
    return true;
  }

  /// Removes `item`, which must currently be in this tree.
  void erase(T& item) noexcept {
    AvlHook* h = &(item.*HookPtr);
    remove_node(h);
    --size_;
    h->parent = h->left = h->right = nullptr;
    h->balance = 0;
  }

  /// Exact-match lookup; nullptr when absent.
  T* find(const Key& key) const noexcept {
    AvlHook* cur = root_;
    while (cur != nullptr) {
      const Key cur_key = KeyOf{}(node_value(cur));
      if (less(key, cur_key)) {
        cur = cur->left;
      } else if (less(cur_key, key)) {
        cur = cur->right;
      } else {
        return &node_value(cur);
      }
    }
    return nullptr;
  }

  /// First element whose key is >= `key`; nullptr when none.
  T* lower_bound(const Key& key) const noexcept {
    AvlHook* cur = root_;
    AvlHook* best = nullptr;
    while (cur != nullptr) {
      if (less(KeyOf{}(node_value(cur)), key)) {
        cur = cur->right;
      } else {
        best = cur;
        cur = cur->left;
      }
    }
    return best ? &node_value(best) : nullptr;
  }

  /// Last element whose key is <= `key`; nullptr when none. This is the
  /// lookup used to map an address to the block/subsegment spanning it.
  T* floor(const Key& key) const noexcept {
    AvlHook* cur = root_;
    AvlHook* best = nullptr;
    while (cur != nullptr) {
      if (less(key, KeyOf{}(node_value(cur)))) {
        cur = cur->left;
      } else {
        best = cur;
        cur = cur->right;
      }
    }
    return best ? &node_value(best) : nullptr;
  }

  /// Smallest element; nullptr when empty.
  T* first() const noexcept {
    if (root_ == nullptr) return nullptr;
    return &node_value(leftmost(root_));
  }

  /// Largest element; nullptr when empty.
  T* last() const noexcept {
    if (root_ == nullptr) return nullptr;
    AvlHook* cur = root_;
    while (cur->right != nullptr) cur = cur->right;
    return &node_value(cur);
  }

  /// In-order successor of `item` (which must be in the tree); nullptr at end.
  T* next(const T& item) const noexcept {
    const AvlHook* h = &(const_cast<T&>(item).*HookPtr);
    if (h->right != nullptr) return &node_value(leftmost(h->right));
    const AvlHook* p = h->parent;
    while (p != nullptr && p->right == h) {
      h = p;
      p = p->parent;
    }
    return p ? &node_value(const_cast<AvlHook*>(p)) : nullptr;
  }

  /// Detaches every node without visiting them (hooks left stale; callers
  /// that reuse nodes must reinsert, which resets hooks).
  void clear() noexcept {
    root_ = nullptr;
    size_ = 0;
  }

  /// Validates AVL invariants (ordering, balance factors, parent links).
  /// Used by tests; throws Error(kInternal) on violation.
  void check_invariants() const {
    size_t count = 0;
    check_subtree(root_, nullptr, &count);
    check_internal(count == size_, "avl size mismatch");
  }

 private:
  static bool less(const Key& a, const Key& b) noexcept {
    if constexpr (std::is_void_v<Compare>) {
      return a < b;
    } else {
      return Compare{}(a, b);
    }
  }

  static T& node_value(const AvlHook* h) noexcept {
    // Recover the enclosing T from the embedded hook address.
    const T* probe = nullptr;
    auto offset = reinterpret_cast<uintptr_t>(&(probe->*HookPtr));
    return *reinterpret_cast<T*>(
        reinterpret_cast<uintptr_t>(const_cast<AvlHook*>(h)) - offset);
  }

  static AvlHook* leftmost(const AvlHook* h) noexcept {
    while (h->left != nullptr) h = h->left;
    return const_cast<AvlHook*>(h);
  }

  void replace_child(AvlHook* parent, AvlHook* old_child,
                     AvlHook* new_child) noexcept {
    if (parent == nullptr) {
      root_ = new_child;
    } else if (parent->left == old_child) {
      parent->left = new_child;
    } else {
      parent->right = new_child;
    }
    if (new_child != nullptr) new_child->parent = parent;
  }

  // Rotations return the new subtree root; balance factors updated per the
  // standard AVL cases.
  AvlHook* rotate_left(AvlHook* x) noexcept {
    AvlHook* z = x->right;
    replace_child(x->parent, x, z);
    x->right = z->left;
    if (z->left != nullptr) z->left->parent = x;
    z->left = x;
    x->parent = z;
    if (z->balance == 0) {  // only during deletion
      x->balance = 1;
      z->balance = -1;
    } else {
      x->balance = 0;
      z->balance = 0;
    }
    return z;
  }

  AvlHook* rotate_right(AvlHook* x) noexcept {
    AvlHook* z = x->left;
    replace_child(x->parent, x, z);
    x->left = z->right;
    if (z->right != nullptr) z->right->parent = x;
    z->right = x;
    x->parent = z;
    if (z->balance == 0) {  // only during deletion
      x->balance = -1;
      z->balance = 1;
    } else {
      x->balance = 0;
      z->balance = 0;
    }
    return z;
  }

  AvlHook* rotate_right_left(AvlHook* x) noexcept {
    AvlHook* z = x->right;
    AvlHook* y = z->left;
    int8_t yb = y->balance;
    // First rotate z right, then x left.
    z->left = y->right;
    if (y->right != nullptr) y->right->parent = z;
    y->right = z;
    z->parent = y;
    replace_child(x->parent, x, y);
    x->right = y->left;
    if (y->left != nullptr) y->left->parent = x;
    y->left = x;
    x->parent = y;
    x->balance = (yb > 0) ? -1 : 0;
    z->balance = (yb < 0) ? 1 : 0;
    y->balance = 0;
    return y;
  }

  AvlHook* rotate_left_right(AvlHook* x) noexcept {
    AvlHook* z = x->left;
    AvlHook* y = z->right;
    int8_t yb = y->balance;
    z->right = y->left;
    if (y->left != nullptr) y->left->parent = z;
    y->left = z;
    z->parent = y;
    replace_child(x->parent, x, y);
    x->left = y->right;
    if (y->right != nullptr) y->right->parent = x;
    y->right = x;
    x->parent = y;
    x->balance = (yb < 0) ? 1 : 0;
    z->balance = (yb > 0) ? -1 : 0;
    y->balance = 0;
    return y;
  }

  void rebalance_after_insert(AvlHook* child) noexcept {
    AvlHook* node = child->parent;
    for (; node != nullptr; node = child->parent) {
      if (node->right == child) {
        if (node->balance > 0) {
          if (child->balance < 0) {
            rotate_right_left(node);
          } else {
            rotate_left(node);
          }
          return;
        }
        if (node->balance < 0) {
          node->balance = 0;
          return;
        }
        node->balance = 1;
      } else {
        if (node->balance < 0) {
          if (child->balance > 0) {
            rotate_left_right(node);
          } else {
            rotate_right(node);
          }
          return;
        }
        if (node->balance > 0) {
          node->balance = 0;
          return;
        }
        node->balance = -1;
      }
      child = node;
    }
  }

  void remove_node(AvlHook* h) noexcept {
    if (h->left != nullptr && h->right != nullptr) {
      // Swap h with its in-order successor so h has <= 1 child, preserving
      // intrusive identity (we move links, not payloads).
      AvlHook* succ = leftmost(h->right);
      swap_nodes(h, succ);
    }
    AvlHook* child = (h->left != nullptr) ? h->left : h->right;
    AvlHook* parent = h->parent;
    bool was_left = (parent != nullptr && parent->left == h);
    replace_child(parent, h, child);
    if (parent != nullptr) {
      rebalance_after_erase(parent, was_left);
    }
  }

  // Exchanges the tree positions of `a` and its successor `b` (b is in a's
  // right subtree and has no left child).
  void swap_nodes(AvlHook* a, AvlHook* b) noexcept {
    std::swap(a->balance, b->balance);
    AvlHook* a_left = a->left;
    AvlHook* a_parent = a->parent;
    if (b->parent == a) {
      // b is a's direct right child.
      replace_child(a_parent, a, b);
      b->left = a_left;
      if (a_left) a_left->parent = b;
      a->right = b->right;
      if (a->right) a->right->parent = a;
      b->right = a;
      a->parent = b;
      a->left = nullptr;
    } else {
      AvlHook* b_parent = b->parent;
      AvlHook* b_right = b->right;
      AvlHook* a_right = a->right;
      replace_child(a_parent, a, b);
      b->left = a_left;
      if (a_left) a_left->parent = b;
      b->right = a_right;
      if (a_right) a_right->parent = b;
      b_parent->left = a;
      a->parent = b_parent;
      a->right = b_right;
      if (b_right) b_right->parent = a;
      a->left = nullptr;
    }
  }

  void rebalance_after_erase(AvlHook* node, bool removed_left) noexcept {
    for (;;) {
      AvlHook* parent = node->parent;
      bool node_was_left = (parent != nullptr && parent->left == node);
      int8_t b;
      if (removed_left) {
        if (node->balance > 0) {
          AvlHook* sibling = node->right;
          int8_t sb = sibling->balance;
          if (sb < 0) {
            node = rotate_right_left(node);
          } else {
            node = rotate_left(node);
          }
          if (sb == 0) return;  // height unchanged
        } else if (node->balance == 0) {
          node->balance = 1;
          return;
        } else {
          node->balance = 0;
          // height shrank; continue up
        }
      } else {
        if (node->balance < 0) {
          AvlHook* sibling = node->left;
          int8_t sb = sibling->balance;
          if (sb > 0) {
            node = rotate_left_right(node);
          } else {
            node = rotate_right(node);
          }
          if (sb == 0) return;
        } else if (node->balance == 0) {
          node->balance = -1;
          return;
        } else {
          node->balance = 0;
        }
      }
      b = node->balance;
      (void)b;
      if (parent == nullptr) return;
      node = parent;
      removed_left = node_was_left;
    }
  }

  int check_subtree(const AvlHook* h, const AvlHook* parent,
                    size_t* count) const {
    if (h == nullptr) return 0;
    check_internal(h->parent == parent, "avl parent link broken");
    ++*count;
    int lh = check_subtree(h->left, h, count);
    int rh = check_subtree(h->right, h, count);
    check_internal(h->balance == rh - lh, "avl balance factor wrong");
    check_internal(h->balance >= -1 && h->balance <= 1, "avl unbalanced");
    if (h->left != nullptr) {
      check_internal(
          less(KeyOf{}(node_value(h->left)), KeyOf{}(node_value(h))),
          "avl order violated (left)");
    }
    if (h->right != nullptr) {
      check_internal(
          less(KeyOf{}(node_value(h)), KeyOf{}(node_value(h->right))),
          "avl order violated (right)");
    }
    return 1 + std::max(lh, rh);
  }

  AvlHook* root_ = nullptr;
  size_t size_ = 0;
};

}  // namespace iw
