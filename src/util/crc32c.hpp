// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum that frames
// every write-ahead-log record.
//
// Two implementations behind one entry point: a portable slice-by-8 table
// walk, and a hardware path using the dedicated CRC32C instructions when
// they exist (SSE4.2 on x86-64, the CRC extension on ARMv8). Dispatch is
// decided once at first use; callers never care which path ran, but
// crc32c_hardware() reports it so tests can cross-check the two.
//
// The value returned is the standard finalized CRC-32C (initial value
// 0xFFFFFFFF, final inversion), i.e. crc32c("123456789") == 0xE3069283 and
// the RFC 3720 §B.4 known-answer vectors hold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace iw {

/// One-shot CRC-32C of `n` bytes.
uint32_t crc32c(const void* p, size_t n);

inline uint32_t crc32c(std::span<const uint8_t> s) {
  return crc32c(s.data(), s.size());
}

/// Incremental form: feeds `n` more bytes into a previously returned
/// (finalized) CRC. crc32c_extend(0, p, n) == crc32c(p, n), and
/// crc32c_extend(crc32c(a), b) == crc32c(a ++ b).
uint32_t crc32c_extend(uint32_t crc, const void* p, size_t n);

inline uint32_t crc32c_extend(uint32_t crc, std::span<const uint8_t> s) {
  return crc32c_extend(crc, s.data(), s.size());
}

/// Portable slice-by-8 implementation, always available; the public
/// entry points use it when no hardware path exists. Exposed so tests can
/// assert hardware and software agree on the same input.
uint32_t crc32c_sw(uint32_t crc, const void* p, size_t n);

/// True when the dispatched implementation uses CPU CRC32C instructions.
bool crc32c_hardware();

}  // namespace iw
