#include "util/fsync.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "util/error.hpp"

namespace iw {

void fdatasync_fd(int fd, const std::string& context) {
  if (::fdatasync(fd) != 0) throw_errno("fdatasync(" + context + ")");
}

void fsync_parent_dir(const std::string& path_in_dir) {
  std::filesystem::path p(path_in_dir);
  std::filesystem::path dir =
      std::filesystem::is_directory(p) ? p : p.parent_path();
  if (dir.empty()) dir = ".";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_errno("open(" + dir.string() + ")");
  int rc = ::fsync(fd);
  int saved = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved;
    throw_errno("fsync(" + dir.string() + ")");
  }
}

void write_file_durable(const std::string& path,
                        std::span<const uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open(" + tmp + ")");
  const uint8_t* p = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      errno = saved;
      throw_errno("write(" + tmp + ")");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fdatasync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = saved;
    throw_errno("fdatasync(" + tmp + ")");
  }
  if (::close(fd) != 0) throw_errno("close(" + tmp + ")");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_errno("rename(" + tmp + " -> " + path + ")");
  }
  fsync_parent_dir(path);
}

}  // namespace iw
