// Growable byte buffer and cursor used throughout the wire-format layer.
//
// Buffer is a thin, append-oriented byte vector with primitive-typed append
// helpers in canonical (big-endian) order. BufReader is a bounds-checked
// cursor over immutable bytes; it throws Error(kProtocol) on overrun, which
// is the right behaviour when the bytes came off the network.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/endian.hpp"
#include "util/error.hpp"

namespace iw {

/// One contiguous piece of an iovec-style scatter/gather chain. Borrowed:
/// the bytes must stay alive while the slice is in use.
struct IoSlice {
  const void* data = nullptr;
  size_t len = 0;
};

/// Append-oriented byte buffer used to build wire-format messages.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(size_t reserve) { bytes_.reserve(reserve); }

  const uint8_t* data() const noexcept { return bytes_.data(); }
  uint8_t* data() noexcept { return bytes_.data(); }
  size_t size() const noexcept { return bytes_.size(); }
  bool empty() const noexcept { return bytes_.empty(); }
  void clear() noexcept { bytes_.clear(); }
  void reserve(size_t n) { bytes_.reserve(n); }

  std::span<const uint8_t> span() const noexcept { return bytes_; }

  /// Appends raw bytes verbatim.
  void append(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    bytes_.insert(bytes_.end(), b, b + n);
  }
  void append(std::span<const uint8_t> s) { append(s.data(), s.size()); }

  void append_u8(uint8_t v) { bytes_.push_back(v); }
  void append_u16(uint16_t v) { grow_and_store(2, [&](void* p) { store_be16(p, v); }); }
  void append_u32(uint32_t v) { grow_and_store(4, [&](void* p) { store_be32(p, v); }); }
  void append_u64(uint64_t v) { grow_and_store(8, [&](void* p) { store_be64(p, v); }); }
  void append_i32(int32_t v) { append_u32(static_cast<uint32_t>(v)); }
  void append_i64(int64_t v) { append_u64(static_cast<uint64_t>(v)); }
  void append_f32(float v) { grow_and_store(4, [&](void* p) { store_be_float(p, v); }); }
  void append_f64(double v) { grow_and_store(8, [&](void* p) { store_be_double(p, v); }); }

  /// Appends a length-prefixed (u32) byte string.
  void append_lp_string(std::string_view s) {
    append_u32(static_cast<uint32_t>(s.size()));
    append(s.data(), s.size());
  }

  /// Grows by `n` bytes and returns a pointer to the new region (bulk
  /// writers fill it directly, avoiding per-element size checks).
  uint8_t* extend(size_t n) {
    size_t off = bytes_.size();
    bytes_.resize(off + n);
    return bytes_.data() + off;
  }

  /// Shrinks the buffer back to `n` bytes, keeping capacity. Lets a writer
  /// that appended a trial encoding (say, a compressed section that did not
  /// pay) discard it without reallocating.
  void truncate(size_t n) {
    check_internal(n <= bytes_.size(), "truncate past end");
    bytes_.resize(n);
  }

  /// Reserves `n` bytes and returns their offset; patch later via patch_u32.
  size_t append_placeholder_u32() {
    size_t off = bytes_.size();
    append_u32(0);
    return off;
  }
  void patch_u32(size_t offset, uint32_t v) {
    check_internal(offset + 4 <= bytes_.size(), "patch_u32 out of range");
    store_be32(bytes_.data() + offset, v);
  }

  std::vector<uint8_t> take() noexcept { return std::move(bytes_); }

  /// Replaces the buffer's storage with `storage`, keeping its capacity.
  /// Pairs with take(): a transport that moved the bytes out can hand the
  /// (now otherwise dead) allocation back for the caller to reuse.
  void adopt(std::vector<uint8_t> storage) noexcept {
    bytes_ = std::move(storage);
  }

  /// Whole-buffer view for scatter/gather I/O.
  IoSlice slice() const noexcept { return {bytes_.data(), bytes_.size()}; }

 private:
  template <typename F>
  void grow_and_store(size_t n, F f) {
    size_t off = bytes_.size();
    bytes_.resize(off + n);
    f(bytes_.data() + off);
  }

  std::vector<uint8_t> bytes_;
};

/// A fixed-capacity chain of borrowed byte ranges — the iovec view the
/// transports use to send a frame header and its payload in one vectored
/// syscall without gluing them into a fresh allocation.
class IoChain {
 public:
  static constexpr size_t kMaxSlices = 4;

  void add(const void* p, size_t n) {
    if (n == 0) return;
    check_internal(count_ < kMaxSlices, "IoChain overflow");
    slices_[count_++] = {p, n};
    total_ += n;
  }
  void add(const Buffer& buffer) { add(buffer.data(), buffer.size()); }
  void add(IoSlice s) { add(s.data, s.len); }

  const IoSlice* slices() const noexcept { return slices_; }
  size_t count() const noexcept { return count_; }
  size_t total_bytes() const noexcept { return total_; }

 private:
  IoSlice slices_[kMaxSlices] = {};
  size_t count_ = 0;
  size_t total_ = 0;
};

/// Bounds-checked forward cursor over immutable bytes (typically a message
/// received from the network). Overruns throw Error(kProtocol).
class BufReader {
 public:
  BufReader(const void* p, size_t n)
      : p_(static_cast<const uint8_t*>(p)), end_(p_ + n) {}
  explicit BufReader(std::span<const uint8_t> s) : BufReader(s.data(), s.size()) {}

  size_t remaining() const noexcept { return static_cast<size_t>(end_ - p_); }
  bool at_end() const noexcept { return p_ == end_; }
  const uint8_t* cursor() const noexcept { return p_; }

  uint8_t read_u8() { return *take(1); }
  uint16_t read_u16() { return load_be16(take(2)); }
  uint32_t read_u32() { return load_be32(take(4)); }
  uint64_t read_u64() { return load_be64(take(8)); }
  int32_t read_i32() { return static_cast<int32_t>(read_u32()); }
  int64_t read_i64() { return static_cast<int64_t>(read_u64()); }
  float read_f32() { return load_be_float(take(4)); }
  double read_f64() { return load_be_double(take(8)); }

  /// Reads `n` raw bytes, returning a view into the underlying storage.
  std::span<const uint8_t> read_bytes(size_t n) {
    return {take(n), n};
  }

  /// Reads a u32-length-prefixed byte string as a std::string.
  std::string read_lp_string() {
    return std::string(read_lp_view());
  }

  /// Reads a u32-length-prefixed byte string as a view into the underlying
  /// storage — no allocation. The view is only valid while the buffer the
  /// reader was constructed over stays alive and unmodified.
  std::string_view read_lp_view() {
    uint32_t n = read_u32();
    auto s = read_bytes(n);
    return {reinterpret_cast<const char*>(s.data()), s.size()};
  }

  /// Skips `n` bytes.
  void skip(size_t n) { take(n); }

 private:
  const uint8_t* take(size_t n) {
    if (remaining() < n) {
      throw Error(ErrorCode::kProtocol, "message truncated");
    }
    const uint8_t* p = p_;
    p_ += n;
    return p;
  }

  const uint8_t* p_;
  const uint8_t* end_;
};

}  // namespace iw
