// Minimal leveled logger.
//
// InterWeave components log protocol and coherence events at kDebug and
// unusual-but-handled conditions at kWarn. The level is a process-wide
// atomic so benchmarks can silence logging without synchronization cost on
// the fast path (a single relaxed load).
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace iw {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the minimum level that is emitted. Default: kWarn.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one formatted line to stderr (thread-safe, single write call).
void log_line(LogLevel level, const std::string& message);

namespace detail {
struct LogStream {
  LogLevel level;
  std::ostringstream os;
  ~LogStream() { log_line(level, os.str()); }
};
inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}
}  // namespace detail

}  // namespace iw

#define IW_LOG(level)                                     \
  if (!::iw::detail::log_enabled(::iw::LogLevel::level)) \
    ;                                                     \
  else                                                    \
    ::iw::detail::LogStream{::iw::LogLevel::level, {}}.os
