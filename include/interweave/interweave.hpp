// InterWeave public API.
//
// Two surfaces are provided:
//
//  1. The C++ API: iw::client::Client and friends (re-exported here), the
//     primary interface. One Client per (possibly simulated) machine.
//
//  2. The paper's C-flavoured API (Figure 1): IW_init / IW_open_segment /
//     IW_malloc / IW_free / IW_rl_acquire / IW_rl_release / IW_wl_acquire /
//     IW_wl_release / IW_mip_to_ptr / IW_ptr_to_mip, operating on a
//     process-global default client. Examples use this surface so they read
//     like the paper's code.
//
// Quickstart:
//
//   iw::server::SegmentServer server;
//   iw::client::Client client(
//       [&](const std::string&) {
//         return std::make_shared<iw::InProcChannel>(server);
//       });
//   IW_init(&client);
//   IW_handle_t h = IW_open_segment("host/list");
//   const iw::TypeDescriptor* node = ...;  // from IDL or Client::types()
//   IW_wl_acquire(h);
//   node_t* p = static_cast<node_t*>(IW_malloc(h, node));
//   ...
//   IW_wl_release(h);
#pragma once

#include <string>

#include "client/client.hpp"
#include "client/reconnect.hpp"
#include "idl/codegen.hpp"
#include "idl/parser.hpp"
#include "net/fault.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "server/directory.hpp"
#include "server/server.hpp"

namespace iw {

using client::Client;
using client::ClientSegment;
using client::ClientStats;
using client::TrackingMode;
using server::SegmentServer;

}  // namespace iw

/// Opaque segment handle of the C-flavoured API.
using IW_handle_t = iw::ClientSegment*;
using IW_mip_t = std::string;

/// Installs the process-global default client used by the IW_* calls. Pass
/// nullptr to detach. The client must outlive its use.
void IW_init(iw::Client* client);

/// The process-global client (throws iw::Error(kState) when unset).
iw::Client& IW_client();

/// Opens (creating if needed) the segment at `url`.
IW_handle_t IW_open_segment(const std::string& url);

/// Allocates a block of `type` in `segment` (write lock required).
void* IW_malloc(IW_handle_t segment, const iw::TypeDescriptor* type,
                const std::string& name = {});
void IW_free(IW_handle_t segment, void* block);

void IW_rl_acquire(IW_handle_t segment);
void IW_rl_release(IW_handle_t segment);
void IW_wl_acquire(IW_handle_t segment);
void IW_wl_release(IW_handle_t segment);

/// Sets the coherence model governing this client's reads of `segment`.
void IW_set_coherence(IW_handle_t segment, iw::CoherencePolicy policy);

IW_mip_t IW_ptr_to_mip(const void* ptr);
void* IW_mip_to_ptr(const IW_mip_t& mip);

/// RAII reader/writer lock guards for the C++-inclined.
namespace iw {

class ReadLock {
 public:
  explicit ReadLock(ClientSegment* segment)
      : client_(&IW_client()), segment_(segment) {
    client_->read_lock(segment_);
  }
  ReadLock(Client& client, ClientSegment* segment)
      : client_(&client), segment_(segment) {
    client_->read_lock(segment_);
  }
  ~ReadLock() { client_->read_unlock(segment_); }
  ReadLock(const ReadLock&) = delete;
  ReadLock& operator=(const ReadLock&) = delete;

 private:
  Client* client_;
  ClientSegment* segment_;
};

class WriteLock {
 public:
  explicit WriteLock(ClientSegment* segment)
      : client_(&IW_client()), segment_(segment) {
    client_->write_lock(segment_);
  }
  WriteLock(Client& client, ClientSegment* segment)
      : client_(&client), segment_(segment) {
    client_->write_lock(segment_);
  }
  ~WriteLock() { client_->write_unlock(segment_); }
  WriteLock(const WriteLock&) = delete;
  WriteLock& operator=(const WriteLock&) = delete;

 private:
  Client* client_;
  ClientSegment* segment_;
};

}  // namespace iw
