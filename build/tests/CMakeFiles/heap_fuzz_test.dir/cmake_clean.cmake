file(REMOVE_RECURSE
  "CMakeFiles/heap_fuzz_test.dir/heap_fuzz_test.cpp.o"
  "CMakeFiles/heap_fuzz_test.dir/heap_fuzz_test.cpp.o.d"
  "heap_fuzz_test"
  "heap_fuzz_test.pdb"
  "heap_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
