file(REMOVE_RECURSE
  "CMakeFiles/client_tracking_test.dir/client_tracking_test.cpp.o"
  "CMakeFiles/client_tracking_test.dir/client_tracking_test.cpp.o.d"
  "client_tracking_test"
  "client_tracking_test.pdb"
  "client_tracking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_tracking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
