# Empty compiler generated dependencies file for client_tracking_test.
# This may be replaced when dependencies are built.
