# Empty dependencies file for wire_translate_test.
# This may be replaced when dependencies are built.
