file(REMOVE_RECURSE
  "CMakeFiles/wire_translate_test.dir/wire_translate_test.cpp.o"
  "CMakeFiles/wire_translate_test.dir/wire_translate_test.cpp.o.d"
  "wire_translate_test"
  "wire_translate_test.pdb"
  "wire_translate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_translate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
