# Empty compiler generated dependencies file for fuzz_protocol_test.
# This may be replaced when dependencies are built.
