file(REMOVE_RECURSE
  "CMakeFiles/fuzz_protocol_test.dir/fuzz_protocol_test.cpp.o"
  "CMakeFiles/fuzz_protocol_test.dir/fuzz_protocol_test.cpp.o.d"
  "fuzz_protocol_test"
  "fuzz_protocol_test.pdb"
  "fuzz_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
