file(REMOVE_RECURSE
  "CMakeFiles/util_list_test.dir/util_list_test.cpp.o"
  "CMakeFiles/util_list_test.dir/util_list_test.cpp.o.d"
  "util_list_test"
  "util_list_test.pdb"
  "util_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
