file(REMOVE_RECURSE
  "CMakeFiles/server_protocol_test.dir/server_protocol_test.cpp.o"
  "CMakeFiles/server_protocol_test.dir/server_protocol_test.cpp.o.d"
  "server_protocol_test"
  "server_protocol_test.pdb"
  "server_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
