# Empty dependencies file for server_protocol_test.
# This may be replaced when dependencies are built.
