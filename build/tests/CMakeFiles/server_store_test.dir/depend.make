# Empty dependencies file for server_store_test.
# This may be replaced when dependencies are built.
