# Empty compiler generated dependencies file for client_heap_test.
# This may be replaced when dependencies are built.
