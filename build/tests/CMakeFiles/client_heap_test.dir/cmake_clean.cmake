file(REMOVE_RECURSE
  "CMakeFiles/client_heap_test.dir/client_heap_test.cpp.o"
  "CMakeFiles/client_heap_test.dir/client_heap_test.cpp.o.d"
  "client_heap_test"
  "client_heap_test.pdb"
  "client_heap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
