# Empty dependencies file for types_layout_test.
# This may be replaced when dependencies are built.
