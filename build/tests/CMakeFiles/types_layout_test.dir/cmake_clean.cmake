file(REMOVE_RECURSE
  "CMakeFiles/types_layout_test.dir/types_layout_test.cpp.o"
  "CMakeFiles/types_layout_test.dir/types_layout_test.cpp.o.d"
  "types_layout_test"
  "types_layout_test.pdb"
  "types_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/types_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
