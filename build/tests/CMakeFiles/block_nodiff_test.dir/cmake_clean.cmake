file(REMOVE_RECURSE
  "CMakeFiles/block_nodiff_test.dir/block_nodiff_test.cpp.o"
  "CMakeFiles/block_nodiff_test.dir/block_nodiff_test.cpp.o.d"
  "block_nodiff_test"
  "block_nodiff_test.pdb"
  "block_nodiff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_nodiff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
