# Empty dependencies file for block_nodiff_test.
# This may be replaced when dependencies are built.
