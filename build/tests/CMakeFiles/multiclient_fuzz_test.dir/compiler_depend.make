# Empty compiler generated dependencies file for multiclient_fuzz_test.
# This may be replaced when dependencies are built.
