file(REMOVE_RECURSE
  "CMakeFiles/multiclient_fuzz_test.dir/multiclient_fuzz_test.cpp.o"
  "CMakeFiles/multiclient_fuzz_test.dir/multiclient_fuzz_test.cpp.o.d"
  "multiclient_fuzz_test"
  "multiclient_fuzz_test.pdb"
  "multiclient_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiclient_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
