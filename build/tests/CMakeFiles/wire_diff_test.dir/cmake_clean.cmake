file(REMOVE_RECURSE
  "CMakeFiles/wire_diff_test.dir/wire_diff_test.cpp.o"
  "CMakeFiles/wire_diff_test.dir/wire_diff_test.cpp.o.d"
  "wire_diff_test"
  "wire_diff_test.pdb"
  "wire_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
