file(REMOVE_RECURSE
  "CMakeFiles/idl_test.dir/idl_test.cpp.o"
  "CMakeFiles/idl_test.dir/idl_test.cpp.o.d"
  "idl_test"
  "idl_test.pdb"
  "idl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
