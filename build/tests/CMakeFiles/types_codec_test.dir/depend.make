# Empty dependencies file for types_codec_test.
# This may be replaced when dependencies are built.
