file(REMOVE_RECURSE
  "CMakeFiles/types_codec_test.dir/types_codec_test.cpp.o"
  "CMakeFiles/types_codec_test.dir/types_codec_test.cpp.o.d"
  "types_codec_test"
  "types_codec_test.pdb"
  "types_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/types_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
