# Empty compiler generated dependencies file for simulation_steering.
# This may be replaced when dependencies are built.
