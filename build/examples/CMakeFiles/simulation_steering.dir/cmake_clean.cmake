file(REMOVE_RECURSE
  "CMakeFiles/simulation_steering.dir/simulation_steering.cpp.o"
  "CMakeFiles/simulation_steering.dir/simulation_steering.cpp.o.d"
  "simulation_steering"
  "simulation_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulation_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
