file(REMOVE_RECURSE
  "CMakeFiles/inventory.dir/inventory.cpp.o"
  "CMakeFiles/inventory.dir/inventory.cpp.o.d"
  "inventory"
  "inventory.pdb"
  "inventory_gen.hpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
