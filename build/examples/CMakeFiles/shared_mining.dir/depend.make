# Empty dependencies file for shared_mining.
# This may be replaced when dependencies are built.
