file(REMOVE_RECURSE
  "CMakeFiles/shared_mining.dir/shared_mining.cpp.o"
  "CMakeFiles/shared_mining.dir/shared_mining.cpp.o.d"
  "shared_mining"
  "shared_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
