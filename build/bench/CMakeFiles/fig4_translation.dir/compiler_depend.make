# Empty compiler generated dependencies file for fig4_translation.
# This may be replaced when dependencies are built.
