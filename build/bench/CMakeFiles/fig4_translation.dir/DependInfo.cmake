
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_translation.cpp" "bench/CMakeFiles/fig4_translation.dir/fig4_translation.cpp.o" "gcc" "bench/CMakeFiles/fig4_translation.dir/fig4_translation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/client/CMakeFiles/iw_client.dir/DependInfo.cmake"
  "/root/repo/build/src/rpcbase/CMakeFiles/iw_rpcbase.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/iw_server.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/iw_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/iw_types.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
