file(REMOVE_RECURSE
  "CMakeFiles/fig4_translation.dir/fig4_translation.cpp.o"
  "CMakeFiles/fig4_translation.dir/fig4_translation.cpp.o.d"
  "fig4_translation"
  "fig4_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
