file(REMOVE_RECURSE
  "CMakeFiles/fig7_datamining.dir/fig7_datamining.cpp.o"
  "CMakeFiles/fig7_datamining.dir/fig7_datamining.cpp.o.d"
  "fig7_datamining"
  "fig7_datamining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_datamining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
