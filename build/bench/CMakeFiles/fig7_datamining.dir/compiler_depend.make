# Empty compiler generated dependencies file for fig7_datamining.
# This may be replaced when dependencies are built.
