file(REMOVE_RECURSE
  "CMakeFiles/fig6_swizzle.dir/fig6_swizzle.cpp.o"
  "CMakeFiles/fig6_swizzle.dir/fig6_swizzle.cpp.o.d"
  "fig6_swizzle"
  "fig6_swizzle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_swizzle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
