# Empty dependencies file for fig6_swizzle.
# This may be replaced when dependencies are built.
