file(REMOVE_RECURSE
  "CMakeFiles/iw_util.dir/error.cpp.o"
  "CMakeFiles/iw_util.dir/error.cpp.o.d"
  "CMakeFiles/iw_util.dir/logging.cpp.o"
  "CMakeFiles/iw_util.dir/logging.cpp.o.d"
  "libiw_util.a"
  "libiw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
