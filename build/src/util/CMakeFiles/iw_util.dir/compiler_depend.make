# Empty compiler generated dependencies file for iw_util.
# This may be replaced when dependencies are built.
