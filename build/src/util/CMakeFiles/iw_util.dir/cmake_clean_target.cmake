file(REMOVE_RECURSE
  "libiw_util.a"
)
