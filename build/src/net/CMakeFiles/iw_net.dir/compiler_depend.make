# Empty compiler generated dependencies file for iw_net.
# This may be replaced when dependencies are built.
