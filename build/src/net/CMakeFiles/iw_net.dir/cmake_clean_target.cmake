file(REMOVE_RECURSE
  "libiw_net.a"
)
