file(REMOVE_RECURSE
  "CMakeFiles/iw_net.dir/inproc.cpp.o"
  "CMakeFiles/iw_net.dir/inproc.cpp.o.d"
  "CMakeFiles/iw_net.dir/tcp.cpp.o"
  "CMakeFiles/iw_net.dir/tcp.cpp.o.d"
  "CMakeFiles/iw_net.dir/transport.cpp.o"
  "CMakeFiles/iw_net.dir/transport.cpp.o.d"
  "libiw_net.a"
  "libiw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
