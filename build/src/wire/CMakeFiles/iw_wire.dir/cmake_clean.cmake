file(REMOVE_RECURSE
  "CMakeFiles/iw_wire.dir/diff.cpp.o"
  "CMakeFiles/iw_wire.dir/diff.cpp.o.d"
  "CMakeFiles/iw_wire.dir/frame.cpp.o"
  "CMakeFiles/iw_wire.dir/frame.cpp.o.d"
  "CMakeFiles/iw_wire.dir/translate.cpp.o"
  "CMakeFiles/iw_wire.dir/translate.cpp.o.d"
  "libiw_wire.a"
  "libiw_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
