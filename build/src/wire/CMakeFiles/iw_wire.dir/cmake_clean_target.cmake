file(REMOVE_RECURSE
  "libiw_wire.a"
)
