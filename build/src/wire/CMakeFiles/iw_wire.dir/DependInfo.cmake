
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/diff.cpp" "src/wire/CMakeFiles/iw_wire.dir/diff.cpp.o" "gcc" "src/wire/CMakeFiles/iw_wire.dir/diff.cpp.o.d"
  "/root/repo/src/wire/frame.cpp" "src/wire/CMakeFiles/iw_wire.dir/frame.cpp.o" "gcc" "src/wire/CMakeFiles/iw_wire.dir/frame.cpp.o.d"
  "/root/repo/src/wire/translate.cpp" "src/wire/CMakeFiles/iw_wire.dir/translate.cpp.o" "gcc" "src/wire/CMakeFiles/iw_wire.dir/translate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/iw_types.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
