# Empty compiler generated dependencies file for iw_wire.
# This may be replaced when dependencies are built.
