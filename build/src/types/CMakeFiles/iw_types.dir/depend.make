# Empty dependencies file for iw_types.
# This may be replaced when dependencies are built.
