file(REMOVE_RECURSE
  "libiw_types.a"
)
