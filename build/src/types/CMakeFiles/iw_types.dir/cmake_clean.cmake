file(REMOVE_RECURSE
  "CMakeFiles/iw_types.dir/platform.cpp.o"
  "CMakeFiles/iw_types.dir/platform.cpp.o.d"
  "CMakeFiles/iw_types.dir/registry.cpp.o"
  "CMakeFiles/iw_types.dir/registry.cpp.o.d"
  "CMakeFiles/iw_types.dir/type_desc.cpp.o"
  "CMakeFiles/iw_types.dir/type_desc.cpp.o.d"
  "libiw_types.a"
  "libiw_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
