
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/types/platform.cpp" "src/types/CMakeFiles/iw_types.dir/platform.cpp.o" "gcc" "src/types/CMakeFiles/iw_types.dir/platform.cpp.o.d"
  "/root/repo/src/types/registry.cpp" "src/types/CMakeFiles/iw_types.dir/registry.cpp.o" "gcc" "src/types/CMakeFiles/iw_types.dir/registry.cpp.o.d"
  "/root/repo/src/types/type_desc.cpp" "src/types/CMakeFiles/iw_types.dir/type_desc.cpp.o" "gcc" "src/types/CMakeFiles/iw_types.dir/type_desc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/iw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
