# Empty compiler generated dependencies file for iw_client.
# This may be replaced when dependencies are built.
