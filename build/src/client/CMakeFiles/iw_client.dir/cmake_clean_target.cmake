file(REMOVE_RECURSE
  "libiw_client.a"
)
