file(REMOVE_RECURSE
  "CMakeFiles/iw_client.dir/api.cpp.o"
  "CMakeFiles/iw_client.dir/api.cpp.o.d"
  "CMakeFiles/iw_client.dir/client.cpp.o"
  "CMakeFiles/iw_client.dir/client.cpp.o.d"
  "CMakeFiles/iw_client.dir/heap.cpp.o"
  "CMakeFiles/iw_client.dir/heap.cpp.o.d"
  "CMakeFiles/iw_client.dir/tracking.cpp.o"
  "CMakeFiles/iw_client.dir/tracking.cpp.o.d"
  "CMakeFiles/iw_client.dir/view.cpp.o"
  "CMakeFiles/iw_client.dir/view.cpp.o.d"
  "libiw_client.a"
  "libiw_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
