# Empty compiler generated dependencies file for iw_mining.
# This may be replaced when dependencies are built.
