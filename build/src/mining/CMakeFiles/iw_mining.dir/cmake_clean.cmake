file(REMOVE_RECURSE
  "CMakeFiles/iw_mining.dir/lattice.cpp.o"
  "CMakeFiles/iw_mining.dir/lattice.cpp.o.d"
  "CMakeFiles/iw_mining.dir/quest.cpp.o"
  "CMakeFiles/iw_mining.dir/quest.cpp.o.d"
  "libiw_mining.a"
  "libiw_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
