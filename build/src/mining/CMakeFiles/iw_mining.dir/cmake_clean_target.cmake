file(REMOVE_RECURSE
  "libiw_mining.a"
)
