file(REMOVE_RECURSE
  "CMakeFiles/iw_rpcbase.dir/rpc.cpp.o"
  "CMakeFiles/iw_rpcbase.dir/rpc.cpp.o.d"
  "CMakeFiles/iw_rpcbase.dir/xdr.cpp.o"
  "CMakeFiles/iw_rpcbase.dir/xdr.cpp.o.d"
  "libiw_rpcbase.a"
  "libiw_rpcbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_rpcbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
