# Empty compiler generated dependencies file for iw_rpcbase.
# This may be replaced when dependencies are built.
