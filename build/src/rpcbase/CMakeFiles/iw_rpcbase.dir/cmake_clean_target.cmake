file(REMOVE_RECURSE
  "libiw_rpcbase.a"
)
