# Empty dependencies file for iw_rpcbase.
# This may be replaced when dependencies are built.
