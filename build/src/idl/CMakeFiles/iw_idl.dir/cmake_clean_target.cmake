file(REMOVE_RECURSE
  "libiw_idl.a"
)
