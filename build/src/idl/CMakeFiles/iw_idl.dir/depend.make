# Empty dependencies file for iw_idl.
# This may be replaced when dependencies are built.
