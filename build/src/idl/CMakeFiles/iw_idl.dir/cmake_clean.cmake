file(REMOVE_RECURSE
  "CMakeFiles/iw_idl.dir/codegen.cpp.o"
  "CMakeFiles/iw_idl.dir/codegen.cpp.o.d"
  "CMakeFiles/iw_idl.dir/lexer.cpp.o"
  "CMakeFiles/iw_idl.dir/lexer.cpp.o.d"
  "CMakeFiles/iw_idl.dir/parser.cpp.o"
  "CMakeFiles/iw_idl.dir/parser.cpp.o.d"
  "libiw_idl.a"
  "libiw_idl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
