# Empty dependencies file for iw_server.
# This may be replaced when dependencies are built.
