file(REMOVE_RECURSE
  "libiw_server.a"
)
