file(REMOVE_RECURSE
  "CMakeFiles/iw_server.dir/segment_store.cpp.o"
  "CMakeFiles/iw_server.dir/segment_store.cpp.o.d"
  "CMakeFiles/iw_server.dir/server.cpp.o"
  "CMakeFiles/iw_server.dir/server.cpp.o.d"
  "libiw_server.a"
  "libiw_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
