# Empty dependencies file for iwserver.
# This may be replaced when dependencies are built.
