file(REMOVE_RECURSE
  "CMakeFiles/iwserver.dir/iwserver.cpp.o"
  "CMakeFiles/iwserver.dir/iwserver.cpp.o.d"
  "iwserver"
  "iwserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iwserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
