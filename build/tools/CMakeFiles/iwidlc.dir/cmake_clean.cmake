file(REMOVE_RECURSE
  "CMakeFiles/iwidlc.dir/iwidlc.cpp.o"
  "CMakeFiles/iwidlc.dir/iwidlc.cpp.o.d"
  "iwidlc"
  "iwidlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iwidlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
