# Empty dependencies file for iwidlc.
# This may be replaced when dependencies are built.
