# Empty compiler generated dependencies file for iwinspect.
# This may be replaced when dependencies are built.
