file(REMOVE_RECURSE
  "CMakeFiles/iwinspect.dir/iwinspect.cpp.o"
  "CMakeFiles/iwinspect.dir/iwinspect.cpp.o.d"
  "iwinspect"
  "iwinspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iwinspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
